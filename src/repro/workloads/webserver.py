"""Read-mostly static web-site workload.

"Since most static web pages are stored as files in traditional file systems,
the technology can be applied to maintain the consistency and referential
integrity between a web page and its metadata ... our design tries to
minimize the overhead in the read access path.  Accessing static web pages in
a web server is a real world example of such a workload." (Sections 1, 3.2)

The workload links N pages across one or more file servers, then issues a
read-heavy mix (Zipf-skewed page popularity) with occasional in-place updates,
measuring per-operation simulated latency.  A BLOB-in-database variant of the
same site supports the iFS/IXFS comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.system import DataLinksSystem
from repro.datalinks.baselines.blob_store import BlobFileStore
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.errors import FileSystemError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.clients import ClientPool
from repro.workloads.generator import WorkloadMetrics, ZipfChooser, make_content

PAGES_TABLE = "web_pages"
WEBMASTER_UID = 2001


@dataclass
class WebSiteConfig:
    """Parameters of the web-site workload."""

    pages: int = 50
    page_size: int = 8 * 1024
    operations: int = 500
    read_fraction: float = 0.98
    control_mode: ControlMode = ControlMode.RFD
    file_servers: int = 1
    zipf_theta: float = 0.99
    seed: int = 42
    #: Number of reader sessions the operation mix is spread over,
    #: round-robin.  ``1`` (the default) reproduces the classic
    #: single-visitor run byte-for-byte; the large bench tier drives
    #: thousands of concurrent client sessions through the same schedule.
    clients: int = 1
    #: The host-side token cache is on by default: a web server re-serving
    #: the same hot (Zipf-skewed) pages re-requests the same capabilities,
    #: which is exactly the hit pattern the cache exists for.
    token_cache: bool = True
    #: Admission-control knobs for :meth:`WebServerWorkload.
    #: run_session_sweep`.  ``admission_limit`` caps concurrent host
    #: connection slots (``None`` admits instantly -- no saturation
    #: knee); ``client_think_s`` is per-read client think time spent
    #: while holding the slot (persistent-connection semantics);
    #: ``client_domain_pool`` caps distinct client clock domains
    #: (``None`` gives every swept session its own domain).
    admission_limit: int | None = None
    client_think_s: float = 0.0
    client_domain_pool: int | None = None


class WebServerWorkload:
    """Build a linked static site and drive a read-mostly operation mix."""

    def __init__(self, config: WebSiteConfig, system: DataLinksSystem | None = None):
        self.config = config
        self.system = system if system is not None else DataLinksSystem()
        self._urls: list[str] = []
        self._webmaster = None

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "WebServerWorkload":
        """Create file servers, the pages table, the files and their links."""

        config = self.config
        if config.token_cache and self.system.engine.token_cache is None:
            self.system.engine.enable_token_cache()
        for index in range(config.file_servers):
            name = f"web{index}"
            if name not in self.system.file_servers:
                self.system.add_file_server(name)
        self.system.create_table(TableSchema(PAGES_TABLE, [
            Column("page_id", DataType.INTEGER, nullable=False),
            Column("title", DataType.TEXT),
            datalink_column("body", DatalinkOptions(control_mode=config.control_mode)),
            Column("body_size", DataType.INTEGER),
            Column("body_mtime", DataType.TIMESTAMP),
        ], primary_key=("page_id",)))
        self.system.register_metadata_columns(PAGES_TABLE, "body",
                                              "body_size", "body_mtime")
        self._webmaster = self.system.session("webmaster", uid=WEBMASTER_UID)
        for page_id in range(config.pages):
            server = f"web{page_id % config.file_servers}"
            path = f"/site/page{page_id:05d}.html"
            content = make_content(config.page_size, tag=f"page{page_id}", version=0)
            url = self._webmaster.put_file(server, path, content)
            self._webmaster.insert(PAGES_TABLE, {
                "page_id": page_id,
                "title": f"Page {page_id}",
                "body": url,
                "body_size": len(content),
                "body_mtime": 0.0,
            })
            self._urls.append(url)
        self.system.run_archiver()
        return self

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        """Issue the configured operation mix; returns per-operation metrics."""

        config = self.config
        clock = self.system.clock
        metrics = WorkloadMetrics(started_at=clock.now())
        chooser = ZipfChooser(config.pages, config.zipf_theta, config.seed)
        # The whole run's zipf page schedule is one vectorized draw,
        # replayed operation by operation (bit-identical to per-op draws).
        page_schedule = chooser.choose_many(config.operations)
        readers = [self.system.session("visitor", uid=3001)]
        for extra in range(1, config.clients):
            readers.append(
                self.system.session(f"visitor{extra}", uid=3001 + extra))
        updates_budget = int(round(config.operations * (1.0 - config.read_fraction)))
        update_every = max(1, config.operations // max(1, updates_budget)) \
            if updates_budget else config.operations + 1
        version = 1
        client_count = len(readers)
        for op_index in range(config.operations):
            page_id = page_schedule[op_index]
            reader = readers[op_index % client_count]
            if op_index % update_every == 0 and updates_budget > 0:
                elapsed = self._update_page(page_id, version)
                if elapsed is None:
                    metrics.bump("update_conflicts")
                else:
                    metrics.record("update_page", elapsed)
                    version += 1
                updates_budget -= 1
            else:
                with clock.measure() as timer:
                    url = reader.get_datalink(PAGES_TABLE, {"page_id": page_id}, "body",
                                              access="read")
                    reader.read_url(url)
                metrics.record("read_page", timer.elapsed)
        metrics.finished_at = clock.now()
        self.system.run_archiver()
        return metrics

    def _update_page(self, page_id: int, version: int) -> float | None:
        config = self.config
        clock = self.system.clock
        content = make_content(config.page_size, tag=f"page{page_id}", version=version)
        with clock.measure() as timer:
            try:
                url = self._webmaster.get_datalink(PAGES_TABLE, {"page_id": page_id},
                                                   "body", access="write")
                with self._webmaster.update_file(url, truncate=True) as update:
                    update.replace(content)
            except FileSystemError:
                return None
        # Archiving is asynchronous; run it outside the measured window, the
        # way the paper's design keeps it off the critical path.
        self.system.run_archiver()
        return timer.elapsed

    # -------------------------------------------------------------- session sweep --
    def run_session_sweep(self, session_counts, *,
                          operations: int | None = None,
                          token_ttl: float = 3600.0,
                          step_hook=None) -> list[dict]:
        """Sweep concurrent reader-session counts over the linked site.

        Each step spreads a Zipf read schedule round-robin over
        ``sessions`` visitor sessions driven by a
        :class:`~repro.workloads.clients.ClientPool`: every session rides
        its own client clock domain, acquires a host admission slot
        (``admission_limit``), thinks for ``client_think_s`` while
        holding it, reads its page against the serving node's domain and
        releases.  A session's page tokens are minted up front in one
        vectorized :meth:`~repro.api.session.Session.get_datalink_many`
        handout -- the batch a web tier prefetches for its connection
        pool.  Per-read end-to-end latency includes the measured
        admission queue delay (reported separately as ``queue_*``), so
        once ``sessions`` exceeds the admission limit the step reports a
        genuine saturation knee: throughput flattens at the limit while
        p99 keeps growing with session count.  Steps where ``sessions``
        exceeds the schedule length grow the schedule so every session
        issues at least one read.  ``step_hook`` (when given) is called
        once after each step and its return value recorded as the step's
        ``profile_calls`` -- the bench harness uses it to attribute
        deterministic profiler call counts per sweep step.  Returns one
        summary dict per step.
        """

        config = self.config
        system = self.system
        clock = system.clock
        base_operations = config.operations if operations is None else operations
        admission = None
        if config.admission_limit is not None:
            admission = system.enable_admission(config.admission_limit)
        steps = []
        for step_index, sessions in enumerate(session_counts):
            step_ops = max(base_operations, sessions)
            chooser = ZipfChooser(config.pages, config.zipf_theta,
                                  config.seed + 1 + step_index)
            schedule = chooser.choose_many(step_ops)
            pool = ClientPool(system, sessions,
                              limit=config.client_domain_pool,
                              think_s=config.client_think_s,
                              username=f"sweep{step_index}_", uid_base=5001)
            bytes_before = [
                self.system.file_server(f"web{index}").physical.device
                    .stats.bytes_read
                for index in range(config.file_servers)
            ]
            urls_by_reader = []
            with clock.measure() as handout_timer:
                for reader_index, reader in enumerate(pool.sessions):
                    wheres = [{"page_id": page_id}
                              for page_id in schedule[reader_index::sessions]]
                    urls_by_reader.append(
                        reader.get_datalink_many(PAGES_TABLE, wheres, "body",
                                                 access="read", ttl=token_ttl))

            def read_page(session, reader_index, op_index):
                session.read_url(urls_by_reader[reader_index][op_index])

            pool.run([len(urls) for urls in urls_by_reader], read_page)
            summary = pool.summary()
            per_server_mb = [
                (self.system.file_server(f"web{index}").physical.device
                     .stats.bytes_read - bytes_before[index]) / (1024 * 1024)
                for index in range(config.file_servers)
            ]
            steps.append({
                "sessions": sessions,
                "reads": summary["operations"],
                "handout_ms": round(handout_timer.elapsed * 1000, 3),
                "mean_read_ms": round(summary["latency_mean_ms"], 3),
                "read_p50_ms": round(summary["latency_p50_ms"], 3),
                "read_p99_ms": round(summary["latency_p99_ms"], 3),
                "queue_p50_ms": round(summary["queue_p50_ms"], 3),
                "queue_p99_ms": round(summary["queue_p99_ms"], 3),
                "ops_per_sim_s": round(summary["ops_per_sim_s"], 1),
                "max_mb_read_per_server": round(max(per_server_mb), 1),
            })
            if step_hook is not None:
                steps[-1]["profile_calls"] = step_hook()
        if admission is not None:
            system.disable_admission()
        return steps

    @property
    def urls(self) -> list[str]:
        return list(self._urls)


class BlobWebSiteWorkload:
    """The same site and mix, with page bodies stored as BLOBs in the database."""

    def __init__(self, config: WebSiteConfig, system: DataLinksSystem | None = None):
        self.config = config
        self.system = system if system is not None else DataLinksSystem()
        self.store = BlobFileStore(self.system.host_db, self.system.clock)

    def setup(self) -> "BlobWebSiteWorkload":
        for page_id in range(self.config.pages):
            content = make_content(self.config.page_size, tag=f"page{page_id}", version=0)
            self.store.write(f"/site/page{page_id:05d}.html", content)
        return self

    def run(self) -> WorkloadMetrics:
        config = self.config
        clock = self.system.clock
        metrics = WorkloadMetrics(started_at=clock.now())
        chooser = ZipfChooser(config.pages, config.zipf_theta, config.seed)
        page_schedule = chooser.choose_many(config.operations)
        updates_budget = int(round(config.operations * (1.0 - config.read_fraction)))
        update_every = max(1, config.operations // max(1, updates_budget)) \
            if updates_budget else config.operations + 1
        version = 1
        for op_index in range(config.operations):
            page_id = page_schedule[op_index]
            path = f"/site/page{page_id:05d}.html"
            if op_index % update_every == 0 and updates_budget > 0:
                content = make_content(config.page_size, tag=f"page{page_id}",
                                       version=version)
                with clock.measure() as timer:
                    self.store.write(path, content)
                metrics.record("update_page", timer.elapsed)
                version += 1
                updates_budget -= 1
            else:
                with clock.measure() as timer:
                    self.store.read(path)
                metrics.record("read_page", timer.elapsed)
        metrics.finished_at = clock.now()
        return metrics
