"""Availability workload under a shard primary crash (experiment E12).

Drives a :class:`~repro.datalinks.sharding.ShardedDataLinksDeployment` --
with or without witness replication -- through five phases:

1. **ingest**: link ``files`` token-protected files across the shards
   through the batched pipeline and the group-commit queue (measured, so
   the replication tax on the write path -- content mirroring plus WAL
   shipping -- shows up as link throughput);
2. **reads before**: every file is read through the deployment's routing
   layer with a token handed out by the host database (round-robin over
   the serving node and every eligible witness);
3. **follower-read batch**: a burst of token-validated reads issued inside
   one scatter-gather window, modelling concurrent visitors.  The batch's
   wall-clock cost is the *bottleneck node's* busy time, so read capacity
   scales with the number of nodes the router may use -- the follower-read
   throughput row of E12;
4. **crash + reads after**: the primary of the shard owning the first
   file's prefix crashes.  Without replication every read of that prefix
   fails until recovery; with replication the deployment fails over
   (promotion is timed) and the same reads succeed against the witness;
5. **writes after**: link transactions targeting the victim prefix.
   Without replication they all fail (0% write availability); with
   writable failover the promoted witness takes the branches and the 2PC
   votes, so they commit (~100%).

Counters: ``links``, ``reads_ok``/``reads_failed`` and their
``victim_*``/``*_after`` variants, ``follower_reads`` with the
``follower_batch`` timing, ``writes_ok_after``/``writes_failed_after``;
``promotion`` records the simulated latency of the failover itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.clients import ClientPool
from repro.workloads.generator import WorkloadMetrics, make_content

DOCS_TABLE = "replicated_docs"
READER_UID = 7001


@dataclass
class FailoverConfig:
    """Parameters of the replica-failover workload."""

    shards: int = 4
    replication: bool = True
    witnesses: int = 1
    files: int = 32
    rows_per_transaction: int = 8
    file_size: int = 2048
    reads_per_phase: int = 48
    follower_read_batch: int = 24
    writes_per_phase: int = 8
    follower_reads: bool = True
    max_follower_lag: int = 0
    control_mode: ControlMode = ControlMode.RDB   # reads need a valid token
    flush_policy: str = "group"
    group_commit_window: int = 4
    prefix_depth: int = 1
    token_ttl: float = 1e9


class FailoverWorkload:
    """Token-validated reads and writes across a primary crash."""

    def __init__(self, config: FailoverConfig,
                 deployment: ShardedDataLinksDeployment | None = None):
        self.config = config
        self.deployment = deployment if deployment is not None else \
            ShardedDataLinksDeployment(
                config.shards,
                prefix_depth=config.prefix_depth,
                flush_policy=config.flush_policy,
                group_commit_window=config.group_commit_window,
                replication=config.replication,
                witnesses=config.witnesses,
                follower_reads=config.follower_reads,
                max_follower_lag=config.max_follower_lag)
        self._session = None
        self._paths: list[str] = []
        self._ingested = False
        self.victim: str | None = None

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "FailoverWorkload":
        config = self.config
        deployment = self.deployment
        deployment.create_table(TableSchema(DOCS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body",
                            DatalinkOptions(control_mode=config.control_mode,
                                            recovery=False)),
        ], primary_key=("doc_id",)))
        self._session = deployment.session("reader", uid=READER_UID)
        self._paths = [f"/area{index % (config.shards * 4)}/doc{index:05d}.dat"
                       for index in range(config.files)]
        self.victim = deployment.shard_of(self._paths[0])
        return self

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        metrics = WorkloadMetrics(started_at=clock.now())

        self._ingest(metrics)
        # Drain the group-commit windows so the read phases measure a
        # settled cluster: witnesses are only read-eligible once every
        # ingest record -- durable or buffered -- has applied to them.
        deployment.system.flush_logs()
        self._read_phase(metrics, suffix="")
        self._follower_batch(metrics)

        deployment.crash_shard(self.victim)
        if deployment.replicated:
            with clock.measure() as timer:
                deployment.fail_over(self.victim)
            metrics.record("promotion", timer.elapsed)
        self._read_phase(metrics, suffix="_after")
        self._write_phase(metrics)

        metrics.finished_at = clock.now()
        return metrics

    def _ingest(self, metrics: WorkloadMetrics) -> None:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        batch: list[dict] = []
        for doc_id, path in enumerate(self._paths):
            content = make_content(config.file_size, tag=f"doc{doc_id}", version=0)
            with clock.measure() as timer:
                url = deployment.put_file(self._session, path, content)
                batch.append({"doc_id": doc_id, "body": url})
                if len(batch) >= config.rows_per_transaction or \
                        doc_id == len(self._paths) - 1:
                    host_txn = deployment.begin()
                    deployment.engine.insert_many(DOCS_TABLE, batch, host_txn)
                    deployment.commit(host_txn)
                    metrics.bump("links", len(batch))
                    batch = []
            metrics.record("link_txn", timer.elapsed)
        with clock.measure() as timer:
            deployment.drain()
        if timer.elapsed:
            metrics.record("final_drain", timer.elapsed)
        self._ingested = True

    def _read_phase(self, metrics: WorkloadMetrics, suffix: str) -> None:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        for read in range(config.reads_per_phase):
            doc_id = read % len(self._paths)
            path = self._paths[doc_id]
            on_victim = deployment.shard_of(path) == self.victim
            url = self._session.get_datalink(
                DOCS_TABLE, {"doc_id": doc_id}, "body", access="read",
                ttl=config.token_ttl)
            try:
                with clock.measure() as timer:
                    deployment.read_url(self._session, url)
                metrics.record(f"read{suffix}", timer.elapsed)
                metrics.bump(f"reads_ok{suffix}")
                if on_victim:
                    metrics.bump(f"victim_reads_ok{suffix}")
            except ReproError:
                metrics.bump(f"reads_failed{suffix}")
                if on_victim:
                    metrics.bump(f"victim_reads_failed{suffix}")

    def _follower_batch(self, metrics: WorkloadMetrics) -> None:
        """A burst of concurrent reads: capacity of the routed read fleet.

        Token handout (host-side SQL) happens before the window; the reads
        themselves run inside one scatter-gather window on the host clock,
        so every read departs together, queues on its target node's own
        timeline, and the batch costs the *slowest node*, not the sum --
        the way a fleet of concurrent visitors loads the cluster.  With
        follower reads on, the router spreads the queueing over the serving
        node plus every witness, so measured throughput scales with the
        node count.
        """

        config = self.config
        if config.follower_read_batch <= 0:
            return
        deployment = self.deployment
        clock = deployment.clock
        urls = []
        for read in range(config.follower_read_batch):
            doc_id = read % len(self._paths)
            urls.append(self._session.get_datalink(
                DOCS_TABLE, {"doc_id": doc_id}, "body", access="read",
                ttl=config.token_ttl))
        with clock.measure() as timer:
            with clock.overlap():
                for url in urls:
                    try:
                        deployment.read_url(self._session, url)
                        metrics.bump("follower_reads")
                    except ReproError:
                        metrics.bump("follower_reads_failed")
        metrics.record("follower_batch", timer.elapsed)

    # ------------------------------------------------------------- client sweep --
    def run_read_sweep(self, client_counts, *, reads_per_client: int = 1,
                       admission_limit: int | None = None,
                       think_s: float = 0.0,
                       domain_pool: int | None = None,
                       step_hook=None) -> list[dict]:
        """Sweep concurrent reader clients over the healthy cluster.

        The per-client replacement for the single
        :meth:`_follower_batch` overlap window: each step drives
        ``clients`` readers through a
        :class:`~repro.workloads.clients.ClientPool` -- every reader on
        its own clock domain, admitted through the host connection gate
        (``admission_limit``), its reads routed over the serving node and
        eligible witnesses and synced against the chosen node's domain.
        Tokens are handed out up front (host-side SQL, unmeasured).
        Requires :meth:`setup`; ingests the configured files first if no
        run has.  ``step_hook`` (when given) is called once after each
        step and its return recorded as the step's ``profile_calls``.
        Returns one summary dict per step with end-to-end latency and
        queue-delay percentiles.
        """

        config = self.config
        deployment = self.deployment
        system = deployment.system
        if not self._ingested:
            self._ingest(WorkloadMetrics(started_at=deployment.clock.now()))
            system.flush_logs()
        admission = None
        if admission_limit is not None:
            admission = system.enable_admission(admission_limit)
        steps = []
        for step_index, clients in enumerate(client_counts):
            urls_by_reader = []
            cursor = 0
            for _ in range(clients):
                urls = []
                for _ in range(reads_per_client):
                    doc_id = cursor % len(self._paths)
                    cursor += 1
                    urls.append(self._session.get_datalink(
                        DOCS_TABLE, {"doc_id": doc_id}, "body",
                        access="read", ttl=config.token_ttl))
                urls_by_reader.append(urls)
            # The pool is created after the host-side token handout so
            # its clients arrive at the cluster's current time.
            pool = ClientPool(system, clients, limit=domain_pool,
                              think_s=think_s,
                              username=f"reader{step_index}c",
                              uid_base=READER_UID + 1000)
            failures = [0]

            def routed_read(session, reader_index, op_index):
                try:
                    deployment.read_url(session,
                                        urls_by_reader[reader_index][op_index])
                except ReproError:
                    failures[0] += 1

            pool.run(reads_per_client, routed_read)
            summary = pool.summary()
            steps.append({
                "clients": clients,
                "reads": summary["operations"] - failures[0],
                "reads_failed": failures[0],
                "read_mean_ms": round(summary["latency_mean_ms"], 3),
                "read_p50_ms": round(summary["latency_p50_ms"], 3),
                "read_p99_ms": round(summary["latency_p99_ms"], 3),
                "queue_p50_ms": round(summary["queue_p50_ms"], 3),
                "queue_p99_ms": round(summary["queue_p99_ms"], 3),
                "reads_per_sim_s": round(summary["ops_per_sim_s"], 1),
            })
            if step_hook is not None:
                steps[-1]["profile_calls"] = step_hook()
        if admission is not None:
            system.disable_admission()
        return steps

    def _write_phase(self, metrics: WorkloadMetrics) -> None:
        """Victim-prefix link transactions after the crash (write availability)."""

        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        prefix = deployment.router.prefix_of(self._paths[0])
        for index in range(config.writes_per_phase):
            doc_id = 100000 + index
            path = f"{prefix}/after{index:05d}.dat"
            content = make_content(config.file_size, tag=f"after{index}",
                                   version=0)
            host_txn = None
            try:
                with clock.measure() as timer:
                    url = deployment.put_file(self._session, path, content)
                    host_txn = deployment.engine.begin()
                    deployment.engine.insert(DOCS_TABLE,
                                             {"doc_id": doc_id, "body": url},
                                             host_txn)
                    deployment.engine.commit(host_txn)
                    host_txn = None
                metrics.record("write_after", timer.elapsed)
                metrics.bump("writes_ok_after")
            except ReproError:
                if host_txn is not None:
                    try:
                        deployment.engine.abort(host_txn)
                    except ReproError:
                        pass
                metrics.bump("writes_failed_after")

    # ------------------------------------------------------------------ derived --
    def link_throughput(self, metrics: WorkloadMetrics) -> float:
        """Links per simulated second over the ingest phase."""

        stats = metrics.stats("link_txn")
        total = stats.total + metrics.stats("final_drain").total
        if total <= 0:
            return 0.0
        return metrics.counters.get("links", 0) / total

    def follower_read_throughput(self, metrics: WorkloadMetrics) -> float:
        """Reads per simulated second over the concurrent read burst."""

        elapsed = metrics.stats("follower_batch").total
        if elapsed <= 0:
            return 0.0
        return metrics.counters.get("follower_reads", 0) / elapsed

    @staticmethod
    def availability(metrics: WorkloadMetrics, *, victim_only: bool = True,
                     after: bool = True) -> float:
        """Fraction of (victim-prefix) reads that succeeded in a phase."""

        scope = "victim_reads" if victim_only else "reads"
        suffix = "_after" if after else ""
        ok = metrics.counters.get(f"{scope}_ok{suffix}", 0)
        failed = metrics.counters.get(f"{scope}_failed{suffix}", 0)
        if ok + failed == 0:
            return 0.0
        return ok / (ok + failed)

    @staticmethod
    def write_availability(metrics: WorkloadMetrics) -> float:
        """Fraction of victim-prefix link transactions that committed."""

        ok = metrics.counters.get("writes_ok_after", 0)
        failed = metrics.counters.get("writes_failed_after", 0)
        if ok + failed == 0:
            return 0.0
        return ok / (ok + failed)
