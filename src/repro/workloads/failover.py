"""Read-availability workload under a shard primary crash (experiment E12).

Drives a :class:`~repro.datalinks.sharding.ShardedDataLinksDeployment` --
with or without witness replication -- through three phases:

1. **ingest**: link ``files`` token-protected files across the shards
   through the batched pipeline and the group-commit queue (measured, so
   the replication tax on the write path -- content mirroring plus WAL
   shipping -- shows up as link throughput);
2. **reads before**: every file is read through the deployment's serving
   router with a token handed out by the host database;
3. **crash + reads after**: the primary of the shard owning the first
   file's prefix crashes.  Without replication every read of that prefix
   fails until recovery; with replication the deployment fails over
   (promotion is timed) and the same reads succeed against the witness.

Counters: ``links``, ``reads_ok``/``reads_failed`` and their
``victim_*``/``*_after`` variants; ``promotion`` records the simulated
latency of the failover itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import WorkloadMetrics, make_content

DOCS_TABLE = "replicated_docs"
READER_UID = 7001


@dataclass
class FailoverConfig:
    """Parameters of the replica-failover workload."""

    shards: int = 4
    replication: bool = True
    files: int = 32
    rows_per_transaction: int = 8
    file_size: int = 2048
    reads_per_phase: int = 48
    control_mode: ControlMode = ControlMode.RDB   # reads need a valid token
    flush_policy: str = "group"
    group_commit_window: int = 4
    prefix_depth: int = 1
    token_ttl: float = 1e9


class FailoverWorkload:
    """Token-validated reads across a primary crash, replica on or off."""

    def __init__(self, config: FailoverConfig,
                 deployment: ShardedDataLinksDeployment | None = None):
        self.config = config
        self.deployment = deployment if deployment is not None else \
            ShardedDataLinksDeployment(
                config.shards,
                prefix_depth=config.prefix_depth,
                flush_policy=config.flush_policy,
                group_commit_window=config.group_commit_window,
                replication=config.replication)
        self._session = None
        self._paths: list[str] = []
        self.victim: str | None = None

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "FailoverWorkload":
        config = self.config
        deployment = self.deployment
        deployment.create_table(TableSchema(DOCS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body",
                            DatalinkOptions(control_mode=config.control_mode,
                                            recovery=False)),
        ], primary_key=("doc_id",)))
        self._session = deployment.session("reader", uid=READER_UID)
        self._paths = [f"/area{index % (config.shards * 4)}/doc{index:05d}.dat"
                       for index in range(config.files)]
        self.victim = deployment.shard_of(self._paths[0])
        return self

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        metrics = WorkloadMetrics(started_at=clock.now())

        self._ingest(metrics)
        self._read_phase(metrics, suffix="")

        deployment.crash_shard(self.victim)
        if deployment.replicated:
            with clock.measure() as timer:
                deployment.fail_over(self.victim)
            metrics.record("promotion", timer.elapsed)
        self._read_phase(metrics, suffix="_after")

        metrics.finished_at = clock.now()
        return metrics

    def _ingest(self, metrics: WorkloadMetrics) -> None:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        batch: list[dict] = []
        for doc_id, path in enumerate(self._paths):
            content = make_content(config.file_size, tag=f"doc{doc_id}", version=0)
            with clock.measure() as timer:
                url = deployment.put_file(self._session, path, content)
                batch.append({"doc_id": doc_id, "body": url})
                if len(batch) >= config.rows_per_transaction or \
                        doc_id == len(self._paths) - 1:
                    host_txn = deployment.begin()
                    deployment.engine.insert_many(DOCS_TABLE, batch, host_txn)
                    deployment.commit(host_txn)
                    metrics.bump("links", len(batch))
                    batch = []
            metrics.record("link_txn", timer.elapsed)
        with clock.measure() as timer:
            deployment.drain()
        if timer.elapsed:
            metrics.record("final_drain", timer.elapsed)

    def _read_phase(self, metrics: WorkloadMetrics, suffix: str) -> None:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        for read in range(config.reads_per_phase):
            doc_id = read % len(self._paths)
            path = self._paths[doc_id]
            on_victim = deployment.shard_of(path) == self.victim
            url = self._session.get_datalink(
                DOCS_TABLE, {"doc_id": doc_id}, "body", access="read",
                ttl=config.token_ttl)
            try:
                with clock.measure() as timer:
                    deployment.read_url(self._session, url)
                metrics.record(f"read{suffix}", timer.elapsed)
                metrics.bump(f"reads_ok{suffix}")
                if on_victim:
                    metrics.bump(f"victim_reads_ok{suffix}")
            except ReproError:
                metrics.bump(f"reads_failed{suffix}")
                if on_victim:
                    metrics.bump(f"victim_reads_failed{suffix}")

    # ------------------------------------------------------------------ derived --
    def link_throughput(self, metrics: WorkloadMetrics) -> float:
        """Links per simulated second over the ingest phase."""

        stats = metrics.stats("link_txn")
        total = stats.total + metrics.stats("final_drain").total
        if total <= 0:
            return 0.0
        return metrics.counters.get("links", 0) / total

    @staticmethod
    def availability(metrics: WorkloadMetrics, *, victim_only: bool = True,
                     after: bool = True) -> float:
        """Fraction of (victim-prefix) reads that succeeded in a phase."""

        scope = "victim_reads" if victim_only else "reads"
        suffix = "_after" if after else ""
        ok = metrics.counters.get(f"{scope}_ok{suffix}", 0)
        failed = metrics.counters.get(f"{scope}_failed{suffix}", 0)
        if ok + failed == 0:
            return 0.0
        return ok / (ok + failed)
