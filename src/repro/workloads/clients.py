"""Concurrent client drivers: per-client clock domains behind admission.

:class:`ClientPool` is the shared engine under the E9/E11/E12 concurrency
sweeps.  It owns ``count`` simulated clients -- each a
:class:`~repro.api.session.Session` bound to its own clock domain (see
:meth:`repro.api.system.DataLinksSystem.client_domains`) -- and replays a
caller-supplied operation per client with honest closed-loop semantics:

1. the client *arrives* (its clock's current time);
2. it acquires a host admission slot -- when every slot is busy its clock
   waits (measured queue delay) for the earliest slot to free, FIFO in
   arrival order;
3. it *thinks* for ``think_s`` on its own timeline while holding the
   slot (a persistent connection: an idle-but-connected client still
   occupies its server slot, which is what pins the saturation knee
   exactly at the admission limit);
4. it runs the operation (file-system work syncs client <-> server
   domains, SQL work barriers through the host);
5. it releases the slot.  End-to-end latency is completion minus
   arrival: queue delay + think + service, the number a real client
   would measure.

Operations across clients are interleaved in simulated-arrival order via
a min-heap, so admission arrivals are non-decreasing (the FIFO-fairness
property the admission tests assert).  Pooled domains (``limit``) reuse
one domain for several clients; a popped entry whose domain has advanced
past it (a poolmate ran) is lazily re-pushed at the domain's current
time, preserving arrival order.  With
:data:`repro.simclock.SESSION_DOMAINS` off every client shares the host
clock and the pool degrades to the serialized round-robin reference
path.  After the run the host :func:`~repro.simclock.gather`\\ s every
client domain in one aggregated merge, so elapsed cluster time is the
slowest client's completion.
"""

from __future__ import annotations

import heapq

from repro.simclock import gather
from repro.workloads.generator import OperationStats


class ClientPool:
    """``count`` concurrent simulated clients with admission and think time.

    ``limit`` pools the client domains (``None`` gives every client its
    own); ``think_s`` is per-operation client think time;
    ``session_factory(username, uid, clock)`` overrides session creation
    (the default goes through ``system.session``).  Admission is whatever
    ``system.admission`` is configured to -- enable it with
    :meth:`~repro.api.system.DataLinksSystem.enable_admission`.
    """

    def __init__(self, system, count: int, *, limit: int | None = None,
                 think_s: float = 0.0, prefix: str = "client",
                 username: str = "client", uid_base: int = 5001,
                 session_factory=None):
        self.system = system
        self.count = count
        self.think_s = think_s
        self.clocks = system.client_domains(count, limit=limit, prefix=prefix)
        if session_factory is None:
            def session_factory(name, uid, clock):
                return system.session(name, uid=uid, clock=clock)
        self.sessions = [session_factory(f"{username}{index}",
                                         uid_base + index, self.clocks[index])
                         for index in range(count)]
        #: Per-operation end-to-end latency / queue delay, simulated seconds.
        self.latency = OperationStats()
        self.queue_delay = OperationStats()
        self.elapsed_s = 0.0

    def sync_clients(self, instant: float | None = None) -> None:
        """Fast-forward every client domain to *instant* (default host now).

        Call before a run whose clients should arrive no earlier than
        the present -- e.g. when the pool outlives host-side work done
        between rounds; otherwise the first operations would measure the
        catch-up to the cluster's current time as latency.
        """

        if instant is None:
            instant = self.system.clock.now()
        for clock in self.clocks:
            if clock.now() < instant:
                clock.sync_to(instant)

    def run(self, ops_per_client, op) -> float:
        """Run the given operations per client; returns elapsed sim-seconds.

        ``ops_per_client`` is an int (same count for every client) or a
        per-client sequence of counts.  ``op(session, client_index,
        op_index)`` performs one operation on the given client session
        (whose clock is ``session.clock``).  Elapsed is measured on the
        host domain across the final gather, so it is the slowest
        client's completion relative to the start.
        """

        host = self.system.clock
        start = host.now()
        admission = self.system.admission
        if isinstance(ops_per_client, int):
            counts = [ops_per_client] * self.count
        else:
            counts = list(ops_per_client)
            if len(counts) != self.count:
                raise ValueError("one op count per client required")
        if self.count > 0 and any(counts):
            distinct = {id(clock) for clock in self.clocks}
            if len(distinct) == 1:
                self._run_serial(counts, op, admission)
            else:
                self._run_interleaved(counts, op, admission)
        gather(host, self.clocks)
        self.elapsed_s = host.now() - start
        return self.elapsed_s

    # ------------------------------------------------------------------ internals --
    def _run_one(self, index: int, op_index: int, op, admission) -> None:
        """One client operation: admit -> think -> op -> release."""

        clock = self.clocks[index]
        arrival = clock.now()
        ticket = admission.acquire(clock) if admission is not None else None
        try:
            if self.think_s > 0.0:
                clock.advance_local(self.think_s)
            op(self.sessions[index], index, op_index)
        finally:
            if ticket is not None:
                admission.release(ticket, clock)
        self.latency.record(clock.now() - arrival)
        self.queue_delay.record(ticket.queue_delay if ticket is not None
                                else 0.0)

    def _run_interleaved(self, counts, op, admission) -> None:
        """Heap-ordered replay: always run the earliest-arriving client."""

        clocks = self.clocks
        heap = [(clocks[index]._now, index, 0)
                for index in range(self.count) if counts[index] > 0]
        heapq.heapify(heap)
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            entry_time, index, op_index = pop(heap)
            clock = clocks[index]
            now = clock._now
            if now > entry_time:
                # A poolmate advanced this shared domain; this client's
                # turn actually starts now.  Re-enter in arrival order.
                push(heap, (now, index, op_index))
                continue
            self._run_one(index, op_index, op, admission)
            next_op = op_index + 1
            if next_op < counts[index]:
                push(heap, (clock._now, index, next_op))

    def _run_serial(self, counts, op, admission) -> None:
        """All clients share one clock: the round-robin reference path."""

        for op_index in range(max(counts)):
            for index in range(self.count):
                if op_index < counts[index]:
                    self._run_one(index, op_index, op, admission)

    # -------------------------------------------------------------------- results --
    def summary(self) -> dict:
        """Aggregate latency/queue percentiles (ms) and throughput."""

        operations = self.latency.count
        elapsed = self.elapsed_s
        return {
            "operations": operations,
            "elapsed_ms": elapsed * 1000.0,
            "ops_per_sim_s": operations / elapsed if elapsed > 0 else 0.0,
            "latency_p50_ms": self.latency.p50 * 1000.0,
            "latency_p99_ms": self.latency.p99 * 1000.0,
            "latency_mean_ms": self.latency.mean * 1000.0,
            "queue_p50_ms": self.queue_delay.p50 * 1000.0,
            "queue_p99_ms": self.queue_delay.p99 * 1000.0,
        }
