"""The DATALINK column options and value helpers.

A DATALINK column is declared with options that tell the DLFM how to manage
the files referenced from it (Section 2.1): the control mode, whether
recovery (archiving of versions) is enabled, and what happens to the file
when it is unlinked.  The storage engine keeps these options opaque in
``Column.options``; :class:`DatalinkOptions` is the typed view used by the
DataLinks engine and the DLFM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.storage.schema import Column
from repro.storage.values import DataType


class OnUnlink(enum.Enum):
    """What the DLFM does with the file when its reference is removed."""

    RESTORE = "RESTORE"    # give the file back to its original owner/permissions
    DELETE = "DELETE"      # remove the file from the file system


@dataclass(frozen=True)
class DatalinkOptions:
    """Per-column DATALINK management options.

    ``strict_read_sync`` implements the extension the paper sketches in its
    closing discussion ("making an upcall to DLFM from DLFS and adding an
    entry in the Sync table will eliminate the problem"): when enabled, read
    opens of rfd-linked files are also registered in the Sync table, closing
    the rfd read/write inconsistency window at the cost of one upcall and two
    repository updates per read open.  The file server must also be created
    with ``strict_read_upcalls=True`` so DLFS makes the upcall at all.
    """

    control_mode: ControlMode = ControlMode.RFF
    recovery: bool = True
    on_unlink: OnUnlink = OnUnlink.RESTORE
    token_ttl: float = 60.0
    strict_read_sync: bool = False

    def to_dict(self) -> dict:
        return {
            "control_mode": self.control_mode.value,
            "recovery": self.recovery,
            "on_unlink": self.on_unlink.value,
            "token_ttl": self.token_ttl,
            "strict_read_sync": self.strict_read_sync,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DatalinkOptions":
        return cls(
            control_mode=ControlMode.from_string(data.get("control_mode", "rff")),
            recovery=bool(data.get("recovery", True)),
            on_unlink=OnUnlink(data.get("on_unlink", "RESTORE")),
            token_ttl=float(data.get("token_ttl", 60.0)),
            strict_read_sync=bool(data.get("strict_read_sync", False)),
        )


def datalink_column(name: str, options: DatalinkOptions | None = None,
                    nullable: bool = True) -> Column:
    """Build a DATALINK :class:`~repro.storage.schema.Column` with *options*."""

    options = options if options is not None else DatalinkOptions()
    return Column(name=name, dtype=DataType.DATALINK, nullable=nullable,
                  options={"datalink": options.to_dict()})


def options_of_column(column: Column) -> DatalinkOptions:
    """Extract the :class:`DatalinkOptions` declared on *column*."""

    data = column.options.get("datalink", {})
    return DatalinkOptions.from_dict(data)
