"""Autonomous placement balancing: the self-driving control plane.

PR 5 made placement *dynamic* (epoched :class:`~repro.datalinks.placement.PlacementMap`,
online :func:`~repro.datalinks.placement.rebalance_prefix`), but every move
was operator-driven.  This module closes the loop: a
:class:`PlacementBalancer` watches the per-prefix routed read/write
counters the :class:`~repro.datalinks.routing.ReplicationRouter` already
keeps, detects skew, and issues the moves itself.

Design
------
* **Caller-ticked daemon on its own clock domain.**  Like the archiver,
  the balancer has no thread: the cluster operator (or an experiment
  harness) calls :meth:`PlacementBalancer.tick` periodically.  Each tick
  runs on the ``"balancer"`` clock domain and executes its moves under
  :func:`~repro.simclock.synchronized_call` against the deployment's
  coordinator domain, so control-plane work genuinely overlaps foreground
  traffic in simulated time and the moves' cost lands on both timelines.
* **Windows, not history.**  The router accumulates per-prefix traffic
  deltas as it notes each routed operation, and a tick drains them
  (:meth:`~repro.datalinks.routing.ReplicationRouter.take_traffic_window`);
  the drained delta is the traffic *window* the decisions are based on,
  and a tick costs O(prefixes touched this window).  Ticks whose window is
  thinner than ``window_ops_min`` make no balancing decisions (too little
  signal), though idle-subtree tracking still advances.
* **Governed, not greedy.**  At most ``move_budget`` moves per tick, a
  per-prefix ``cooldown_ticks`` re-move lockout, and every move must
  *strictly reduce the maximum shard load* for the window
  (``ops[prefix] + load[dest] < load[source]``).  The strict-improvement
  rule is what makes the balancer convergent: on a stable workload the
  max load can only step down a finite number of times, after which the
  balancer goes quiet instead of thrashing prefixes back and forth.
* **Split when moving cannot help.**  A single prefix hotter than
  ``split_threshold`` of its whole shard cannot be fixed by moving it --
  the hotspot just changes address.  The balancer then *splits* the
  prefix (:meth:`~repro.datalinks.sharding.ShardedDataLinksDeployment.split_prefix`):
  the map's effective routing depth deepens under that subtree, existing
  sub-prefixes stay pinned where they are, and the very next window sees
  per-sub-prefix counters it can move independently.
* **Merge when the heat is gone.**  A split subtree whose window traffic
  stays below ``merge_idle_ops`` for ``merge_idle_ticks`` consecutive
  ticks is merged back: remaining budget first co-locates its
  sub-prefixes onto the majority holder, then
  :meth:`~repro.datalinks.sharding.ShardedDataLinksDeployment.merge_prefix`
  collapses the split so the map does not accrete depth forever.

Every decision is recorded: per-tick summaries in
:attr:`PlacementBalancer.history` and cumulative counters in
:meth:`PlacementBalancer.stats` (surfaced through
``ShardedDataLinksDeployment.stats()["balancer"]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.placement import path_under
from repro.errors import PlacementError, ReproError
from repro.simclock import synchronized_call


@dataclass
class BalancerConfig:
    """Knobs of the autonomous balancer."""

    #: Minimum routed operations in a tick's window before the balancer
    #: acts; thinner windows are noise.
    window_ops_min: int = 16
    #: Maximum rebalance moves issued per tick (co-location moves for a
    #: merge count against the same budget).
    move_budget: int = 2
    #: A moved prefix may not move again for this many ticks.
    cooldown_ticks: int = 2
    #: A shard is overloaded when its window load exceeds this multiple
    #: of the fair share (total / shards).
    imbalance_tolerance: float = 1.25
    #: Split a prefix when it alone carries at least this fraction of its
    #: shard's window load and moving it whole cannot reduce the maximum.
    split_threshold: float = 0.5
    #: A split subtree is "idle" in a tick when its window traffic is
    #: below this many operations.
    merge_idle_ops: int = 1
    #: Idle ticks in a row before a split subtree is merged back.
    merge_idle_ticks: int = 3


class PlacementBalancer:
    """Watches routed traffic and rebalances prefix placement by itself."""

    def __init__(self, deployment, config: BalancerConfig | None = None):
        self.deployment = deployment
        self.config = config if config is not None else BalancerConfig()
        #: The balancer's own timeline, like the archive domain: planning
        #: and moves overlap foreground traffic instead of serializing
        #: with it.
        self.clock = deployment.clocks.domain("balancer")
        #: ``prefix -> first tick at which it may move again``.
        self._cooldown_until: dict[str, int] = {}
        #: ``split parent -> consecutive idle ticks`` (merge candidates).
        self._split_idle: dict[str, int] = {}
        self.ticks = 0
        self.moves_issued = 0
        self.moves_refused = 0
        self.moves_skipped_budget = 0
        self.moves_skipped_cooldown = 0
        self.splits = 0
        self.merges = 0
        #: One summary dict per tick, in order.
        self.history: list[dict] = []

    # ------------------------------------------------------------------ window --
    def _window(self) -> dict[str, int]:
        """Per-prefix routed operations since the previous tick.

        The router accumulates the per-window deltas as traffic is noted
        (:meth:`~repro.datalinks.routing.ReplicationRouter.take_traffic_window`),
        so a tick costs O(prefixes touched this window) -- the balancer
        used to re-copy and diff the full cumulative counter dicts, which
        is O(prefixes ever touched) per tick.
        """

        return self.deployment.router.take_traffic_window()

    def _movable(self, prefix: str, tick: int, summary: dict) -> bool:
        pmap = self.deployment.router.placement
        if pmap.is_moving(prefix) or prefix in pmap.split_depths:
            return False
        if self._cooldown_until.get(prefix, 0) > tick:
            self.moves_skipped_cooldown += 1
            summary["skipped_cooldown"] += 1
            return False
        return True

    def _move(self, prefix: str, dest: str, tick: int, summary: dict) -> bool:
        """Issue one governed move; returns whether it succeeded."""

        deployment = self.deployment
        try:
            with synchronized_call(self.clock, deployment.clock):
                result = deployment.rebalance_prefix(prefix, dest)
        except (PlacementError, ReproError):
            # A refused move (in-flight opens, pending archive jobs, a
            # node down mid-protocol...) is back-pressure, not a fault;
            # the cooldown keeps the balancer from hammering the prefix.
            self.moves_refused += 1
            self._cooldown_until[prefix] = tick + self.config.cooldown_ticks
            summary["refused"] += 1
            return False
        self.moves_issued += 1
        self._cooldown_until[prefix] = tick + self.config.cooldown_ticks
        summary["moves"].append({"prefix": prefix, "source": result["source"],
                                 "dest": dest, "epoch": result["epoch"]})
        return True

    # --------------------------------------------------------------- balancing --
    def _rebalance(self, window: dict[str, int], budget: int, tick: int,
                   summary: dict) -> int:
        """Move hot prefixes off overloaded shards; split when stuck."""

        config = self.config
        pmap = self.deployment.router.placement
        shards = self.deployment.shard_names
        load = {name: 0 for name in shards}
        by_owner: dict[str, dict[str, int]] = {name: {} for name in shards}
        for prefix, ops in window.items():
            owner = pmap.owner_of(prefix)
            if owner not in load:
                continue
            load[owner] += ops
            by_owner[owner][prefix] = ops
        fair = sum(load.values()) / max(1, len(shards))

        while True:
            source = max(load, key=lambda name: load[name])
            if load[source] <= config.imbalance_tolerance * fair:
                break
            dest = min(load, key=lambda name: load[name])
            candidates = sorted(by_owner[source],
                                key=lambda p: by_owner[source][p],
                                reverse=True)
            moved = False
            for prefix in candidates:
                ops = by_owner[source][prefix]
                if ops + load[dest] >= load[source]:
                    # Moving this prefix cannot strictly reduce the max
                    # load; smaller candidates cannot either once the
                    # hottest ones are exhausted, but they may still fit.
                    continue
                if not self._movable(prefix, tick, summary):
                    continue
                if budget <= 0:
                    self.moves_skipped_budget += 1
                    summary["skipped_budget"] += 1
                    return budget
                if self._move(prefix, dest, tick, summary):
                    budget -= 1
                    load[source] -= ops
                    load[dest] += ops
                    del by_owner[source][prefix]
                    by_owner[dest][prefix] = ops
                    moved = True
                    break
            if moved:
                continue
            # No strictly-improving move exists.  If one prefix dominates
            # the shard, deepen the map under it so the *next* window can
            # spread its subtrees (at most one split per tick).
            if not summary["splits"] and candidates:
                hottest = candidates[0]
                if by_owner[source][hottest] >= \
                        config.split_threshold * load[source] \
                        and hottest not in pmap.split_depths \
                        and not pmap.is_moving(hottest):
                    try:
                        with synchronized_call(self.clock,
                                               self.deployment.clock):
                            result = self.deployment.split_prefix(hottest)
                    except (PlacementError, ReproError):
                        break
                    self.splits += 1
                    summary["splits"].append(
                        {"prefix": hottest, "depth": result["depth"],
                         "epoch": result["epoch"]})
            break
        return budget

    # ----------------------------------------------------------------- merging --
    def _track_idle_splits(self, window: dict[str, int]) -> list[str]:
        """Advance idle counters; returns the split parents due a merge."""

        config = self.config
        pmap = self.deployment.router.placement
        due = []
        for parent in list(pmap.split_depths):
            traffic = sum(ops for prefix, ops in window.items()
                          if path_under(parent, prefix))
            if traffic < config.merge_idle_ops:
                self._split_idle[parent] = self._split_idle.get(parent, 0) + 1
            else:
                self._split_idle[parent] = 0
            if self._split_idle[parent] >= config.merge_idle_ticks:
                due.append(parent)
        for parent in list(self._split_idle):
            if parent not in pmap.split_depths:
                del self._split_idle[parent]
        return due

    def _try_merge(self, parent: str, budget: int, tick: int,
                   summary: dict) -> int:
        """Merge a cold split subtree, co-locating its pieces first."""

        deployment = self.deployment
        try:
            with synchronized_call(self.clock, deployment.clock):
                result = deployment.merge_prefix(parent)
        except PlacementError:
            pass
        except ReproError:
            return budget
        else:
            self.merges += 1
            self._split_idle.pop(parent, None)
            summary["merges"].append(result)
            return budget
        # Spread sub-prefixes: move the minority holders' pieces onto the
        # majority holder (budgeted), then the next idle tick merges.
        try:
            holders = {name: [path for path in deployment.linked_paths(name)
                              if path_under(parent, path)]
                       for name in deployment.shard_names}
        except ReproError:
            return budget
        holders = {name: paths for name, paths in holders.items() if paths}
        if not holders:
            return budget
        target = max(holders, key=lambda name: len(holders[name]))
        pmap = deployment.router.placement
        for name in sorted(holders):
            if name == target:
                continue
            for sub in sorted({pmap.prefix_of(path)
                               for path in holders[name]}):
                if budget <= 0:
                    self.moves_skipped_budget += 1
                    summary["skipped_budget"] += 1
                    return budget
                if not self._movable(sub, tick, summary):
                    continue
                if self._move(sub, target, tick, summary):
                    budget -= 1
        return budget

    # -------------------------------------------------------------------- tick --
    def tick(self) -> dict:
        """One balancing pass; returns this tick's decision summary."""

        self.ticks += 1
        tick = self.ticks
        window = self._window()
        total = sum(window.values())
        summary = {"tick": tick, "window_ops": total, "moves": [],
                   "splits": [], "merges": [], "refused": 0,
                   "skipped_budget": 0, "skipped_cooldown": 0,
                   "acted": total >= self.config.window_ops_min}
        budget = self.config.move_budget
        if summary["acted"]:
            budget = self._rebalance(window, budget, tick, summary)
        for parent in self._track_idle_splits(window):
            budget = self._try_merge(parent, budget, tick, summary)
        self.history.append(summary)
        return summary

    def run(self, ticks: int) -> list[dict]:
        """Convenience: *ticks* consecutive passes; returns their summaries."""

        return [self.tick() for _ in range(ticks)]

    # ------------------------------------------------------------------- stats --
    def stats(self) -> dict:
        return {
            "ticks": self.ticks,
            "moves_issued": self.moves_issued,
            "moves_refused": self.moves_refused,
            "moves_skipped_budget": self.moves_skipped_budget,
            "moves_skipped_cooldown": self.moves_skipped_cooldown,
            "splits": self.splits,
            "merges": self.merges,
            "move_budget": self.config.move_budget,
            "max_moves_per_tick": max(
                (len(entry["moves"]) for entry in self.history), default=0),
        }
