"""Sharded multi-DLFM scale-out deployment.

The paper's architecture already allows "files [to] be spread over multiple
file servers"; this module turns that into an operational scale-out layer:

* :class:`ShardRouter` hash-partitions linked files across N file servers by
  **URL path prefix** (the first ``prefix_depth`` path components), so whole
  directories co-locate on one shard and placement is stable and
  deterministic;
* :class:`ShardedDataLinksDeployment` builds a
  :class:`~repro.api.system.DataLinksSystem` with N file-server shards,
  routes file placement through the router, and runs a **group-commit
  queue**: transactions enqueue at commit time and a whole batch is resolved
  with one ``prepare_many``/``commit_many`` message per enlisted shard plus a
  single host log force (:meth:`~repro.datalinks.engine.DataLinksEngine.commit_group`).

With ``replication=True`` every shard additionally gets a **witness
replica** (``shard0-r`` for ``shard0``): linked-file content is mirrored at
ingest, the primary's repository WAL stream ships to the witness on every
log force, and when a primary crashes :meth:`ShardedDataLinksDeployment.fail_over`
promotes the witness so token validation and read traffic keep flowing for
that shard's URL prefix.  An epoch/fencing scheme
(:class:`~repro.datalinks.replication.EpochRegistry`) guarantees a
recovered ex-primary refuses to serve until the shard fails back to it
(:meth:`ShardedDataLinksDeployment.fail_back`, which resyncs the witness).

Knobs
-----
``shards``                number of file servers (``shard0`` .. ``shardN-1``)
``prefix_depth``          how many leading path components the router hashes
``flush_policy``          WAL commit flush policy for host + shard
                          repositories (``"group"`` by default here)
``group_commit_window``   commits buffered before the queue auto-drains;
                          ``1`` disables the queue (classic per-transaction
                          two-phase commit)
``replication``           add a witness replica per shard, fed by the
                          primary's repository WAL stream
``replica_suffix``        witness server name suffix (default ``"-r"``)
``serial_clock``          collapse every node onto one shared timeline (the
                          pre-clock-domain serial model, kept for honest A/B
                          comparisons); by default every shard, witness and
                          the archive run on their own clock domain and
                          genuinely overlap (see :mod:`repro.simclock`)

Because enqueued transactions stay ACTIVE (locks held) until the batch
drains, callers that need a transaction's effects visible immediately should
call :meth:`ShardedDataLinksDeployment.drain` (reads of *other* rows are
unaffected).
"""

from __future__ import annotations

import hashlib

from repro.api.system import DataLinksSystem, FileServer
from repro.datalinks.engine import HostTransaction
from repro.datalinks.replication import EpochRegistry, ReplicatedShard
from repro.errors import DaemonUnavailableError, DataLinksError, ReproError
from repro.simclock import CostModel, SimClock
from repro.storage.schema import TableSchema
from repro.util.lsn import LSN
from repro.util.urls import format_url, parse_url


class ShardRouter:
    """Stable hash placement of file paths onto named shards.

    Paths are keyed by their first ``prefix_depth`` components, so files in
    the same directory subtree land on the same shard (cheap directory
    listings, one enlisted shard for subtree-local transactions).
    """

    def __init__(self, shard_names: list[str], prefix_depth: int = 1):
        if not shard_names:
            raise DataLinksError("a shard router needs at least one shard")
        self.shard_names = list(shard_names)
        self.prefix_depth = max(1, int(prefix_depth))

    def prefix_of(self, path: str) -> str:
        components = [part for part in path.split("/") if part]
        return "/" + "/".join(components[: self.prefix_depth])

    def shard_of(self, path: str) -> str:
        """The shard responsible for *path* (stable across runs/processes)."""

        digest = hashlib.sha1(self.prefix_of(path).encode("utf-8")).digest()
        index = int.from_bytes(digest[:8], "big") % len(self.shard_names)
        return self.shard_names[index]


class ShardedDataLinksDeployment:
    """A DataLinks installation scaled out over N file-server shards."""

    def __init__(self, shards: int = 4, *,
                 cost_model: CostModel | None = None,
                 clock: SimClock | None = None,
                 shard_prefix: str = "shard",
                 prefix_depth: int = 1,
                 flush_policy: str = "group",
                 group_commit_window: int = 8,
                 strict_read_upcalls: bool = False,
                 replication: bool = False,
                 replica_suffix: str = "-r",
                 serial_clock: bool = False):
        if shards < 1:
            raise DataLinksError("a sharded deployment needs at least one shard")
        self.system = DataLinksSystem(cost_model, clock,
                                      flush_policy=flush_policy,
                                      group_commit_window=group_commit_window,
                                      serial_clock=serial_clock)
        self.shard_names = [f"{shard_prefix}{index}" for index in range(shards)]
        for name in self.shard_names:
            self.system.add_file_server(name,
                                        strict_read_upcalls=strict_read_upcalls)
        self.router = ShardRouter(self.shard_names, prefix_depth)
        self.group_commit_window = max(1, int(group_commit_window))
        self._pending: list[HostTransaction] = []
        self.replicas: dict[str, ReplicatedShard] = {}
        self.epochs: EpochRegistry | None = None
        if replication:
            self.epochs = EpochRegistry()
            for name in self.shard_names:
                witness = self.system.add_file_server(
                    f"{name}{replica_suffix}",
                    strict_read_upcalls=strict_read_upcalls,
                    token_secret=self.shard(name).dlfm.token_secret)
                self.replicas[name] = ReplicatedShard(
                    name, primary=self.shard(name), witness=witness,
                    registry=self.epochs, engine=self.engine,
                    clock=self.clock)

    # ----------------------------------------------------------------- accessors --
    @property
    def engine(self):
        return self.system.engine

    @property
    def clock(self) -> SimClock:
        """The host node's clock domain (where commits are coordinated)."""

        return self.system.clock

    @property
    def clocks(self):
        """The deployment's clock-domain group."""

        return self.system.clocks

    def global_now(self) -> float:
        """Cluster wall-clock time: the max over every node's domain."""

        return self.system.clocks.global_now()

    @property
    def host_db(self):
        return self.system.host_db

    def shard(self, name: str) -> FileServer:
        return self.system.file_server(name)

    def session(self, username: str, uid: int, gid: int = 100):
        return self.system.session(username, uid, gid=gid)

    def create_table(self, schema: TableSchema) -> None:
        self.system.create_table(schema)

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        self.system.register_metadata_columns(table, column, size_column,
                                              mtime_column)

    # ------------------------------------------------------------------ placement --
    def shard_of(self, path: str) -> str:
        return self.router.shard_of(path)

    def url_for(self, path: str) -> str:
        """The DATALINK URL for *path*, on the shard the router assigns."""

        return format_url(self.shard_of(path), path)

    def put_file(self, session, path: str, content: bytes) -> str:
        """Create *path* on its responsible shard; returns the DATALINK URL.

        Under replication the content is also mirrored to the shard's
        witness, so a later promotion can serve it without the primary.
        """

        shard = self.shard_of(path)
        url = session.put_file(shard, path, content)
        replica = self.replicas.get(shard)
        if replica is not None:
            replica.mirror_file(path, content, session.cred)
        return url

    # ------------------------------------------------------------------- reading --
    @property
    def replicated(self) -> bool:
        return bool(self.replicas)

    def serving_file_server(self, shard: str) -> FileServer:
        """The node currently holding *shard*'s serving lease.

        Raises :class:`~repro.errors.DaemonUnavailableError` when that node
        is down -- for an unreplicated shard that means the shard's URL
        prefix is unreadable until recovery; for a replicated shard it
        means :meth:`fail_over` has not promoted the witness yet.
        """

        replica = self.replicas.get(shard)
        server = replica.serving if replica is not None else self.shard(shard)
        if not server.running:
            hint = "; fail_over() promotes the witness" if replica is not None \
                else ""
            raise DaemonUnavailableError(
                f"file server {server.name!r} is down{hint}")
        return server

    def read_url(self, session, url: str) -> bytes:
        """Read a (tokenized) DATALINK URL through the shard's serving node."""

        server = self.serving_file_server(parse_url(url).server)
        return session.read_url(url, server=server.name)

    # --------------------------------------------------------- group-commit queue --
    def begin(self) -> HostTransaction:
        return self.engine.begin()

    def commit(self, host_txn: HostTransaction) -> LSN | None:
        """Commit through the group-commit queue.

        With a window of 1 this is a plain per-transaction two-phase commit.
        Otherwise the transaction enqueues; once the window fills the whole
        batch is resolved with one prepare and one commit message per
        enlisted shard and a single host log force.  Returns the commit LSN
        when a batch was driven to disk, ``None`` while enqueued.
        """

        if self.group_commit_window <= 1:
            return self.engine.commit(host_txn)
        self._pending.append(host_txn)
        if len(self._pending) >= self.group_commit_window:
            return self.drain()
        return None

    def abort(self, host_txn: HostTransaction) -> None:
        if host_txn in self._pending:
            self._pending.remove(host_txn)
        self.engine.abort(host_txn)

    def drain(self) -> LSN | None:
        """Force the pending commit group.

        If a shard fails before the host commit is durable, every
        transaction of the batch is aborted (group commit is
        all-or-nothing at the batch level) and the failure re-raised.  If
        the failure strikes *after* the host commit -- mid participant
        commits -- the batch's transactions are already durably committed
        and must not be rolled back: their participant commits are
        re-driven on the surviving shards, and a crashed shard resolves its
        in-doubt branches from the host outcome when it recovers.
        """

        batch, self._pending = self._pending, []
        if not batch:
            return None
        try:
            return self.engine.commit_group(batch)
        except ReproError:
            for host_txn in batch:
                if self.host_db.txn_outcome(host_txn.txn_id) == "committed":
                    self.engine.redrive_commit(host_txn)
                    continue
                try:
                    self.engine.abort(host_txn)
                except ReproError:
                    pass
            raise

    @property
    def pending_commits(self) -> int:
        return len(self._pending)

    # -------------------------------------------------------------- fault injection --
    def crash_shard(self, name: str) -> None:
        self.system.crash_file_server(name)

    def recover_shard(self, name: str) -> dict:
        """Restart a crashed primary.

        The recovered node resolves its own in-doubt branches but, on a
        replicated shard that failed over, stays *fenced* until
        :meth:`fail_back`.
        """

        return self.system.recover_file_server(name)

    # ------------------------------------------------------------------- failover --
    def _replica(self, name: str) -> ReplicatedShard:
        try:
            return self.replicas[name]
        except KeyError:
            raise DataLinksError(
                f"shard {name!r} has no witness replica "
                f"(deployment built with replication=False)") from None

    def fail_over(self, name: str) -> dict:
        """Promote *name*'s witness: reads and token validation move there."""

        return self._replica(name).promote()

    def fail_back(self, name: str) -> dict:
        """Return *name* to its primary (recovering it first if needed)."""

        replica = self._replica(name)
        if not replica.primary.running:
            self.recover_shard(name)
        return replica.fail_back()

    def crash_witness(self, name: str) -> None:
        self._replica(name).crash_witness()

    def recover_witness(self, name: str) -> dict:
        return self._replica(name).recover_witness()

    # ------------------------------------------------------------------- statistics --
    def linked_paths(self, shard: str) -> set:
        """Linked files of *shard*, read from its current serving node."""

        replica = self.replicas.get(shard)
        server = replica.serving if replica is not None else self.shard(shard)
        return {row["path"] for row in server.dlfm.repository.linked_files()}

    def _linked_count(self, name: str) -> int | None:
        """Linked files on shard *name*, or ``None`` while the node is down."""

        try:
            return len(self.linked_paths(name))
        except ReproError:
            return None

    def stats(self) -> dict:
        """Per-shard link counts, WAL flush and clock-domain statistics."""

        clocks = self.system.clocks
        stats = {
            "shards": len(self.shard_names),
            "flush_policy": self.system.flush_policy,
            "pending_commits": self.pending_commits,
            "host_log_flushes": self.system.host_db.wal.flush_count,
            "linked_files_per_shard": {
                name: self._linked_count(name) for name in self.shard_names},
            "clock_domains": {
                "serial": clocks.serial,
                "global_now_ms": clocks.global_now() * 1000.0,
                "now_ms_per_domain": clocks.times_by_domain(),
                "charged_ms_per_domain": {
                    name: domain.stats.grand_total() * 1000.0
                    for name, domain in sorted(clocks.domains.items())},
            },
        }
        token_cache = self.engine.token_cache_stats()
        if token_cache.get("enabled"):
            stats["token_cache"] = token_cache
        if self.replicated:
            stats["replication"] = {
                name: self.replicas[name].status() for name in self.shard_names}
        return stats
