"""Sharded multi-DLFM scale-out deployment.

The paper's architecture already allows "files [to] be spread over multiple
file servers"; this module turns that into an operational scale-out layer:

* :class:`ShardRouter` hash-partitions linked files across N file servers by
  **URL path prefix** (the first ``prefix_depth`` path components), so whole
  directories co-locate on one shard and placement is stable and
  deterministic;
* :class:`ShardedDataLinksDeployment` builds a
  :class:`~repro.api.system.DataLinksSystem` with N file-server shards,
  routes file placement through the router, and runs a **group-commit
  queue**: transactions enqueue at commit time and a whole batch is resolved
  with one ``prepare_many``/``commit_many`` message per enlisted shard plus a
  single host log force (:meth:`~repro.datalinks.engine.DataLinksEngine.commit_group`).

Knobs
-----
``shards``                number of file servers (``shard0`` .. ``shardN-1``)
``prefix_depth``          how many leading path components the router hashes
``flush_policy``          WAL commit flush policy for host + shard
                          repositories (``"group"`` by default here)
``group_commit_window``   commits buffered before the queue auto-drains;
                          ``1`` disables the queue (classic per-transaction
                          two-phase commit)

Because enqueued transactions stay ACTIVE (locks held) until the batch
drains, callers that need a transaction's effects visible immediately should
call :meth:`ShardedDataLinksDeployment.drain` (reads of *other* rows are
unaffected).
"""

from __future__ import annotations

import hashlib

from repro.api.system import DataLinksSystem, FileServer
from repro.datalinks.engine import HostTransaction
from repro.errors import DataLinksError, ReproError
from repro.simclock import CostModel, SimClock
from repro.storage.schema import TableSchema
from repro.util.lsn import LSN
from repro.util.urls import format_url


class ShardRouter:
    """Stable hash placement of file paths onto named shards.

    Paths are keyed by their first ``prefix_depth`` components, so files in
    the same directory subtree land on the same shard (cheap directory
    listings, one enlisted shard for subtree-local transactions).
    """

    def __init__(self, shard_names: list[str], prefix_depth: int = 1):
        if not shard_names:
            raise DataLinksError("a shard router needs at least one shard")
        self.shard_names = list(shard_names)
        self.prefix_depth = max(1, int(prefix_depth))

    def prefix_of(self, path: str) -> str:
        components = [part for part in path.split("/") if part]
        return "/" + "/".join(components[: self.prefix_depth])

    def shard_of(self, path: str) -> str:
        """The shard responsible for *path* (stable across runs/processes)."""

        digest = hashlib.sha1(self.prefix_of(path).encode("utf-8")).digest()
        index = int.from_bytes(digest[:8], "big") % len(self.shard_names)
        return self.shard_names[index]


class ShardedDataLinksDeployment:
    """A DataLinks installation scaled out over N file-server shards."""

    def __init__(self, shards: int = 4, *,
                 cost_model: CostModel | None = None,
                 clock: SimClock | None = None,
                 shard_prefix: str = "shard",
                 prefix_depth: int = 1,
                 flush_policy: str = "group",
                 group_commit_window: int = 8,
                 strict_read_upcalls: bool = False):
        if shards < 1:
            raise DataLinksError("a sharded deployment needs at least one shard")
        self.system = DataLinksSystem(cost_model, clock,
                                      flush_policy=flush_policy,
                                      group_commit_window=group_commit_window)
        self.shard_names = [f"{shard_prefix}{index}" for index in range(shards)]
        for name in self.shard_names:
            self.system.add_file_server(name,
                                        strict_read_upcalls=strict_read_upcalls)
        self.router = ShardRouter(self.shard_names, prefix_depth)
        self.group_commit_window = max(1, int(group_commit_window))
        self._pending: list[HostTransaction] = []

    # ----------------------------------------------------------------- accessors --
    @property
    def engine(self):
        return self.system.engine

    @property
    def clock(self) -> SimClock:
        return self.system.clock

    @property
    def host_db(self):
        return self.system.host_db

    def shard(self, name: str) -> FileServer:
        return self.system.file_server(name)

    def session(self, username: str, uid: int, gid: int = 100):
        return self.system.session(username, uid, gid=gid)

    def create_table(self, schema: TableSchema) -> None:
        self.system.create_table(schema)

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        self.system.register_metadata_columns(table, column, size_column,
                                              mtime_column)

    # ------------------------------------------------------------------ placement --
    def shard_of(self, path: str) -> str:
        return self.router.shard_of(path)

    def url_for(self, path: str) -> str:
        """The DATALINK URL for *path*, on the shard the router assigns."""

        return format_url(self.shard_of(path), path)

    def put_file(self, session, path: str, content: bytes) -> str:
        """Create *path* on its responsible shard; returns the DATALINK URL."""

        return session.put_file(self.shard_of(path), path, content)

    # --------------------------------------------------------- group-commit queue --
    def begin(self) -> HostTransaction:
        return self.engine.begin()

    def commit(self, host_txn: HostTransaction) -> LSN | None:
        """Commit through the group-commit queue.

        With a window of 1 this is a plain per-transaction two-phase commit.
        Otherwise the transaction enqueues; once the window fills the whole
        batch is resolved with one prepare and one commit message per
        enlisted shard and a single host log force.  Returns the commit LSN
        when a batch was driven to disk, ``None`` while enqueued.
        """

        if self.group_commit_window <= 1:
            return self.engine.commit(host_txn)
        self._pending.append(host_txn)
        if len(self._pending) >= self.group_commit_window:
            return self.drain()
        return None

    def abort(self, host_txn: HostTransaction) -> None:
        if host_txn in self._pending:
            self._pending.remove(host_txn)
        self.engine.abort(host_txn)

    def drain(self) -> LSN | None:
        """Force the pending commit group.

        If a shard fails before the host commit is durable, every
        transaction of the batch is aborted (group commit is
        all-or-nothing at the batch level) and the failure re-raised.  If
        the failure strikes *after* the host commit -- mid participant
        commits -- the batch's transactions are already durably committed
        and must not be rolled back: their participant commits are
        re-driven on the surviving shards, and a crashed shard resolves its
        in-doubt branches from the host outcome when it recovers.
        """

        batch, self._pending = self._pending, []
        if not batch:
            return None
        try:
            return self.engine.commit_group(batch)
        except ReproError:
            for host_txn in batch:
                if self.host_db.txn_outcome(host_txn.txn_id) == "committed":
                    self.engine.redrive_commit(host_txn)
                    continue
                try:
                    self.engine.abort(host_txn)
                except ReproError:
                    pass
            raise

    @property
    def pending_commits(self) -> int:
        return len(self._pending)

    # -------------------------------------------------------------- fault injection --
    def crash_shard(self, name: str) -> None:
        self.system.crash_file_server(name)

    def recover_shard(self, name: str) -> dict:
        return self.system.recover_file_server(name)

    # ------------------------------------------------------------------- statistics --
    def linked_paths(self, shard: str) -> set:
        repository = self.shard(shard).dlfm.repository
        return {row["path"] for row in repository.linked_files()}

    def stats(self) -> dict:
        """Per-shard link counts plus host WAL flush statistics."""

        return {
            "shards": len(self.shard_names),
            "flush_policy": self.system.flush_policy,
            "pending_commits": self.pending_commits,
            "host_log_flushes": self.system.host_db.wal.flush_count,
            "linked_files_per_shard": {
                name: len(self.linked_paths(name)) for name in self.shard_names},
        }
