"""Sharded multi-DLFM scale-out deployment.

The paper's architecture already allows "files [to] be spread over multiple
file servers"; this module turns that into an operational scale-out layer:

* :class:`ShardRouter` hash-partitions linked files across N file servers by
  **URL path prefix** (the first ``prefix_depth`` path components), so whole
  directories co-locate on one shard.  The hash is only the *initial*
  placement: the deployment wraps it in a versioned
  :class:`~repro.datalinks.placement.PlacementMap` whose **placement
  epoch** stamps every routing decision, and
  :meth:`ShardedDataLinksDeployment.rebalance_prefix` moves a prefix to
  another shard online -- a two-phase-commit hand-off of the prefix's
  linked-file rows, archived version chain and file content, with the
  destination's witnesses mirrored in the same step.  Every DLFM holds a
  :class:`~repro.datalinks.placement.PlacementGuard` onto the same map,
  so after a move the old owner refuses straggler writes with a
  :class:`~repro.errors.PlacementEpochError` redirect instead of silently
  taking them, and stale-epoch message envelopes are rejected at the
  daemon boundary;
* :class:`ShardedDataLinksDeployment` builds a
  :class:`~repro.api.system.DataLinksSystem` with N file-server shards,
  routes file placement through the router, and runs a **group-commit
  queue**: transactions enqueue at commit time and a whole batch is resolved
  with one ``prepare_many``/``commit_many`` message per enlisted shard plus a
  single host log force (:meth:`~repro.datalinks.engine.DataLinksEngine.commit_group`).

With ``replication=True`` every shard additionally gets one or more
**witness replicas** (``shard0-r``, ``shard0-r2``, ... for ``shard0``):
linked-file content is mirrored at ingest and the serving node's repository
WAL stream ships to every witness on every log force.  Routing is owned by
a :class:`~repro.datalinks.routing.ReplicationRouter`:

* **writable failover** -- when a primary crashes,
  :meth:`ShardedDataLinksDeployment.fail_over` promotes the best witness to
  a *full primary*: the engine's DLFM connections re-route through the
  router, so link/unlink branches and two-phase commit for the shard's URL
  prefix keep flowing (not just reads);
* **reversed-ship fail-back** -- :meth:`ShardedDataLinksDeployment.fail_back`
  rejoins the recovered ex-primary as a witness fed by the new primary's
  WAL stream, catching up from its last-applied LSN instead of a full
  resync, then rotates the lease back under a fence;
* **follower reads** -- :meth:`ShardedDataLinksDeployment.read_url`
  load-balances token-validated reads round-robin over the serving node and
  every healthy witness within the ``max_follower_lag`` staleness bound.

An epoch/fencing scheme (:class:`~repro.datalinks.replication.EpochRegistry`)
guarantees a deposed ex-primary refuses to serve until it rejoins the
stream.

Knobs
-----
``shards``                number of file servers (``shard0`` .. ``shardN-1``)
``prefix_depth``          how many leading path components the router hashes
``flush_policy``          WAL commit flush policy for host + shard
                          repositories (``"group"`` by default here)
``group_commit_window``   commits buffered before the queue auto-drains;
                          ``1`` disables the queue (classic per-transaction
                          two-phase commit)
``replication``           add witness replicas per shard, fed by the
                          serving node's repository WAL stream
``witnesses``             witness replicas per shard (default 1)
``replica_suffix``        witness server name suffix (default ``"-r"``)
``follower_reads``        let healthy witnesses serve reads (default on)
``max_follower_lag``      staleness bound for follower reads, in shipped
                          WAL records (default 0: fully caught up)
``serial_clock``          collapse every node onto one shared timeline (the
                          pre-clock-domain serial model, kept for honest A/B
                          comparisons); by default every shard, witness and
                          the archive run on their own clock domain and
                          genuinely overlap (see :mod:`repro.simclock`)

Because enqueued transactions stay ACTIVE (locks held) until the batch
drains, callers that need a transaction's effects visible immediately should
call :meth:`ShardedDataLinksDeployment.drain` (reads of *other* rows are
unaffected).
"""

from __future__ import annotations

from repro.api.system import DataLinksSystem, FileServer
from repro.datalinks.balancer import BalancerConfig, PlacementBalancer
from repro.datalinks.engine import HostTransaction
from repro.datalinks.placement import (PlacementGuard, path_under,
                                       rebalance_prefix, sweep_moved_prefix)
from repro.datalinks.replication import EpochRegistry, ReplicatedShard
from repro.datalinks.routing import ReplicationRouter, ShardRouter
from repro.errors import DataLinksError, PlacementError, ReplicationError, \
    ReproError
from repro.simclock import CostModel, SimClock
from repro.storage.schema import TableSchema
from repro.util.lsn import LSN
from repro.util.urls import format_url, parse_url

__all__ = ["ShardRouter", "ShardedDataLinksDeployment"]


class ShardedDataLinksDeployment:
    """A DataLinks installation scaled out over N file-server shards."""

    def __init__(self, shards: int = 4, *,
                 cost_model: CostModel | None = None,
                 clock: SimClock | None = None,
                 shard_prefix: str = "shard",
                 prefix_depth: int = 1,
                 flush_policy: str = "group",
                 group_commit_window: int = 8,
                 strict_read_upcalls: bool = False,
                 replication: bool = False,
                 witnesses: int = 1,
                 replica_suffix: str = "-r",
                 follower_reads: bool = True,
                 max_follower_lag: int = 0,
                 serial_clock: bool = False):
        if shards < 1:
            raise DataLinksError("a sharded deployment needs at least one shard")
        self.system = DataLinksSystem(cost_model, clock,
                                      flush_policy=flush_policy,
                                      group_commit_window=group_commit_window,
                                      serial_clock=serial_clock)
        self.shard_names = [f"{shard_prefix}{index}" for index in range(shards)]
        for name in self.shard_names:
            self.system.add_file_server(name,
                                        strict_read_upcalls=strict_read_upcalls)
        self.router = ReplicationRouter(
            ShardRouter(self.shard_names, prefix_depth),
            follower_reads=follower_reads, max_follower_lag=max_follower_lag)
        self.engine.set_router(self.router)
        self.group_commit_window = max(1, int(group_commit_window))
        self._pending: list[HostTransaction] = []
        self.replicas: dict[str, ReplicatedShard] = {}
        self.epochs: EpochRegistry | None = None
        if replication:
            self.epochs = EpochRegistry()
            for name in self.shard_names:
                witness_nodes = []
                for index in range(1, max(1, int(witnesses)) + 1):
                    suffix = replica_suffix if index == 1 \
                        else f"{replica_suffix}{index}"
                    witness_nodes.append(self.system.add_file_server(
                        f"{name}{suffix}",
                        strict_read_upcalls=strict_read_upcalls,
                        token_secret=self.shard(name).dlfm.token_secret))
                replica = ReplicatedShard(
                    name, primary=self.shard(name), witnesses=witness_nodes,
                    registry=self.epochs, engine=self.engine,
                    clock=self.clock)
                self.replicas[name] = replica
                self.router.register_replicated(name, replica)
        else:
            for name in self.shard_names:
                self.router.register_shard(name, self.shard(name))
        # Every DLFM of a shard -- serving node and witnesses alike --
        # enforces placement against the *same* epoched map the router
        # reads, so a rebalanced prefix is fenced on its old owner the
        # instant the map commits (no propagation step to lose).
        for name in self.shard_names:
            guard = PlacementGuard(self.router.placement, name)
            replica = self.replicas.get(name)
            if replica is not None:
                for node in replica.nodes.values():
                    node.dlfm.set_placement(guard)
            else:
                self.shard(name).dlfm.set_placement(guard)
        #: Fault-injection hooks for the rebalance hand-off:
        #: ``rebalance:prepare`` / ``rebalance:export`` /
        #: ``rebalance:archive`` / ``rebalance:import`` /
        #: ``rebalance:fence`` / ``rebalance:sweep`` (the last fires
        #: between the committed map swing and the source GC sweep --
        #: see :mod:`repro.datalinks.placement`).
        self.rebalance_failpoints: dict = {}
        #: Deferred post-move source sweeps: ``prefix -> sweep entry``.
        #: Entries are recorded before a sweep is attempted and removed
        #: only when it succeeds, so a crash between commit and sweep is
        #: redriven by :meth:`redrive_sweeps` / :meth:`recover_shard`.
        self.pending_sweeps: dict[str, dict] = {}
        #: The autonomous placement balancer (off until
        #: :meth:`enable_balancer`).
        self.balancer: PlacementBalancer | None = None

    # ----------------------------------------------------------------- accessors --
    @property
    def engine(self):
        return self.system.engine

    @property
    def clock(self) -> SimClock:
        """The host node's clock domain (where commits are coordinated)."""

        return self.system.clock

    @property
    def clocks(self):
        """The deployment's clock-domain group."""

        return self.system.clocks

    def global_now(self) -> float:
        """Cluster wall-clock time: the max over every node's domain."""

        return self.system.clocks.global_now()

    @property
    def host_db(self):
        return self.system.host_db

    def shard(self, name: str) -> FileServer:
        return self.system.file_server(name)

    def session(self, username: str, uid: int, gid: int = 100, clock=None):
        """A session against the deployment's host; ``clock`` binds it to
        a client clock domain (see
        :meth:`repro.api.system.DataLinksSystem.client_domains`)."""

        return self.system.session(username, uid, gid=gid, clock=clock)

    def create_table(self, schema: TableSchema) -> None:
        self.system.create_table(schema)

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        self.system.register_metadata_columns(table, column, size_column,
                                              mtime_column)

    # ------------------------------------------------------------------ placement --
    def shard_of(self, path: str) -> str:
        return self.router.shard_of(path)

    def url_for(self, path: str) -> str:
        """The DATALINK URL for *path*, on the shard the router assigns."""

        return format_url(self.shard_of(path), path)

    def put_file(self, session, path: str, content: bytes) -> str:
        """Create *path* on its responsible shard; returns the DATALINK URL.

        Content is written through the shard's current *serving* node (the
        witness, after a failover -- write availability is the point of
        writable failover) and, under replication, mirrored to every
        witness so a later promotion can serve it.  The returned URL always
        names the logical shard, so it stays valid across failover and
        fail-back.
        """

        shard = self.shard_of(path)
        serving = self.router.route_write(shard)
        self.router.note_write(path)
        session.put_file(serving.name, path, content)
        replica = self.replicas.get(shard)
        if replica is not None:
            replica.mirror_file(path, content, session.cred.uid,
                                session.cred.gid)
        return format_url(shard, path)

    # ------------------------------------------------------------------- reading --
    @property
    def replicated(self) -> bool:
        return bool(self.replicas)

    def serving_file_server(self, shard: str) -> FileServer:
        """The node currently holding *shard*'s serving lease.

        Raises :class:`~repro.errors.DaemonUnavailableError` when that node
        is down -- for an unreplicated shard that means the shard's URL
        prefix is unreadable until recovery; for a replicated shard it
        means :meth:`fail_over` has not promoted a witness yet.
        """

        return self.router.serving_server(shard)

    def read_url(self, session, url: str) -> bytes:
        """Read a (tokenized) DATALINK URL through the routing layer.

        The URL's ``(server, path)`` pair first resolves to the prefix's
        *current owner* (old URLs stay valid across a rebalance), then the
        router load-balances round-robin over that shard's serving node
        and every healthy witness within the follower-read staleness
        bound; the token embedded in the URL stays valid on any of them
        because witnesses share their primary's signing secret (tokens for
        a moved prefix are signed by the destination shard).
        """

        parsed = parse_url(url)
        shard = self.router.owner_shard(parsed.server, parsed.path)
        server = self.router.route_read(shard, path=parsed.path)
        self.router.note_read(parsed.path)
        return session.read_url(url, server=server.name)

    # --------------------------------------------------------- group-commit queue --
    def begin(self) -> HostTransaction:
        return self.engine.begin()

    def commit(self, host_txn: HostTransaction) -> LSN | None:
        """Commit through the group-commit queue.

        With a window of 1 this is a plain per-transaction two-phase commit.
        Otherwise the transaction enqueues; once the window fills the whole
        batch is resolved with one prepare and one commit message per
        enlisted shard and a single host log force.  Returns the commit LSN
        when a batch was driven to disk, ``None`` while enqueued.
        """

        if self.group_commit_window <= 1:
            return self.engine.commit(host_txn)
        self._pending.append(host_txn)
        if len(self._pending) >= self.group_commit_window:
            return self.drain()
        return None

    def abort(self, host_txn: HostTransaction) -> None:
        if host_txn in self._pending:
            self._pending.remove(host_txn)
        self.engine.abort(host_txn)

    def drain(self) -> LSN | None:
        """Force the pending commit group.

        If a shard fails before the host commit is durable, every
        transaction of the batch is aborted (group commit is
        all-or-nothing at the batch level) and the failure re-raised.  If
        the failure strikes *after* the host commit -- mid participant
        commits -- the batch's transactions are already durably committed
        and must not be rolled back: their participant commits are
        re-driven on the surviving shards, and a crashed shard resolves its
        in-doubt branches from the host outcome when it recovers.
        """

        batch, self._pending = self._pending, []
        if not batch:
            return None
        try:
            return self.engine.commit_group(batch)
        except ReproError:
            for host_txn in batch:
                if self.host_db.txn_outcome(host_txn.txn_id) == "committed":
                    self.engine.redrive_commit(host_txn)
                    continue
                try:
                    self.engine.abort(host_txn)
                except ReproError:
                    pass
            raise

    @property
    def pending_commits(self) -> int:
        return len(self._pending)

    # -------------------------------------------------------------- fault injection --
    def crash_shard(self, name: str) -> None:
        self.system.crash_file_server(name)

    def recover_shard(self, name: str) -> dict:
        """Restart a crashed primary.

        The recovered node resolves its own in-doubt branches but, on a
        replicated shard that failed over, stays *fenced* until
        :meth:`fail_back`.  Any post-move source sweep deferred by a crash
        is redriven now that the node is back.
        """

        summary = self.system.recover_file_server(name)
        if self.pending_sweeps:
            summary["redriven_sweeps"] = {
                prefix: sweep["swept_files"]
                for prefix, sweep in self.redrive_sweeps().items()
                if not sweep["deferred"]}
        return summary

    # ------------------------------------------------------------------- failover --
    def _replica(self, name: str) -> ReplicatedShard:
        try:
            return self.replicas[name]
        except KeyError:
            if name not in self.shard_names:
                raise ReplicationError(
                    f"cannot fail over/back shard {name!r}: no such shard "
                    f"(known shards: {self.shard_names})") from None
            raise ReplicationError(
                f"cannot fail over/back shard {name!r}: it has no witness "
                f"replica because the deployment was built with "
                f"replication=False") from None

    def fail_over(self, name: str) -> dict:
        """Promote *name*'s best witness to a **full primary**.

        Reads, token validation *and* the write path (link/unlink branches,
        2PC enlistment) move to the promoted node: the engine's DLFM
        connections resolve through the router, so traffic addressed to the
        logical shard reaches the new serving node transparently.
        """

        return self._replica(name).promote()

    def fail_back(self, name: str) -> dict:
        """Return *name* to its primary (recovering it first if needed).

        The recovered ex-primary rejoins as a witness fed by the new
        primary's reversed WAL stream and catches up from its last-applied
        LSN (no full resync unless its durable state diverged); then the
        serving lease rotates back under a fence.
        """

        replica = self._replica(name)
        if not replica.primary.running:
            self.recover_shard(name)
        return replica.fail_back()

    def rejoin_shard(self, name: str) -> dict:
        """Re-admit *name*'s recovered ex-primary as a read-serving witness
        without failing back (the witness keeps the serving lease)."""

        return self._replica(name).rejoin(self._replica(name).home_primary)

    # ---------------------------------------------------------------- rebalancing --
    def rebalance_prefix(self, prefix: str, dest_shard: str) -> dict:
        """Move a URL prefix to *dest_shard* online, under a 2PC hand-off.

        Relinks the prefix's files and re-attaches its archived version
        chain on the destination DLFM, copies the content to the
        destination's serving node *and its witnesses* (so a promotion
        after the move serves from the destination's witness set), fences
        the source under the old placement epoch and bumps the placement
        map atomically at the durable commit.  Foreground traffic for
        every other prefix keeps flowing throughout; link/unlink of the
        moving prefix is refused with a retryable
        :class:`~repro.errors.PlacementError` until the hand-off resolves.
        See :func:`repro.datalinks.placement.rebalance_prefix` for the
        protocol and its failure handling.
        """

        return rebalance_prefix(self, prefix, dest_shard,
                                self.rebalance_failpoints)

    def redrive_sweeps(self) -> dict:
        """Retry every deferred post-move source sweep.

        Returns ``{prefix: sweep summary}``; entries that still cannot be
        verified (destination down or incomplete, a source node down)
        stay pending for the next redrive.
        """

        return {prefix: sweep_moved_prefix(self, prefix)
                for prefix in list(self.pending_sweeps)}

    def split_prefix(self, prefix: str, depth: int | None = None) -> dict:
        """Split *prefix* one level deeper (or to *depth*) in the map.

        Every sub-prefix that already holds linked files is pinned to the
        subtree's current owner, so the split itself moves no data -- it
        only makes the sub-prefixes independently rebalance-able (how a
        single hot prefix spreads across shards).  Bumps the placement
        epoch.
        """

        pmap = self.router.placement
        owner = pmap.owner_of(prefix)
        own_depth = len([part for part in prefix.split("/") if part])
        depth = own_depth + 1 if depth is None else int(depth)
        server = self.router.serving_server(owner)
        pins: dict[str, str] = {}
        for row in server.dlfm.repository.linked_files():
            path = row["path"]
            if not path_under(prefix, path):
                continue
            components = [part for part in path.split("/") if part]
            sub = "/" + "/".join(components[:min(depth, len(components))])
            pins[sub] = owner
        epoch = pmap.split_prefix(prefix, depth, pins)
        return {"prefix": prefix, "depth": depth, "pins": pins,
                "epoch": epoch}

    def merge_prefix(self, prefix: str) -> dict:
        """Merge a split *prefix* back to shallow routing.

        Refuses unless every file under the subtree lives on one shard --
        co-locate the sub-prefixes with :meth:`rebalance_prefix` first.
        Bumps the placement epoch.
        """

        pmap = self.router.placement
        if prefix not in pmap.split_depths:
            raise PlacementError(f"prefix {prefix!r} is not split")
        holders = {name for name in self.shard_names
                   if any(path_under(prefix, path)
                          for path in self.linked_paths(name))}
        if len(holders) > 1:
            raise PlacementError(
                f"cannot merge {prefix!r}: its files are spread over "
                f"{sorted(holders)}; co-locate the sub-prefixes with "
                f"rebalance_prefix first")
        shard = holders.pop() if holders else pmap.owner_of(prefix)
        epoch = pmap.merge_prefix(prefix, shard)
        return {"prefix": prefix, "shard": shard, "epoch": epoch}

    def enable_balancer(self,
                        config: BalancerConfig | None = None) -> PlacementBalancer:
        """Attach the autonomous placement balancer (its own clock domain).

        The balancer is caller-ticked like the archiver: each
        :meth:`~repro.datalinks.balancer.PlacementBalancer.tick` diffs the
        router's per-prefix traffic counters and issues budgeted
        ``rebalance_prefix`` moves (and splits/merges) on its own
        timeline.
        """

        self.balancer = PlacementBalancer(self, config or BalancerConfig())
        return self.balancer

    def crash_witness(self, name: str, witness_name: str | None = None) -> None:
        self._replica(name).crash_witness(witness_name)

    def recover_witness(self, name: str, witness_name: str | None = None) -> dict:
        return self._replica(name).recover_witness(witness_name)

    # ------------------------------------------------------------------- statistics --
    def linked_paths(self, shard: str) -> set:
        """Linked files of *shard*, read from its current serving node."""

        replica = self.replicas.get(shard)
        server = replica.serving if replica is not None else self.shard(shard)
        return {row["path"] for row in server.dlfm.repository.linked_files()}

    def _linked_count(self, name: str) -> int | None:
        """Linked files on shard *name*, or ``None`` while the node is down."""

        try:
            return len(self.linked_paths(name))
        except ReproError:
            return None

    def stats(self) -> dict:
        """Per-shard link counts, WAL flush and clock-domain statistics."""

        clocks = self.system.clocks
        stats = {
            "shards": len(self.shard_names),
            "flush_policy": self.system.flush_policy,
            "pending_commits": self.pending_commits,
            "host_log_flushes": self.system.host_db.wal.flush_count,
            "linked_files_per_shard": {
                name: self._linked_count(name) for name in self.shard_names},
            "clock_domains": {
                "serial": clocks.serial,
                "global_now_ms": clocks.global_now() * 1000.0,
                "now_ms_per_domain": clocks.times_by_domain(),
                "charged_ms_per_domain": {
                    name: domain.stats.grand_total() * 1000.0
                    for name, domain in sorted(clocks.domains.items())},
            },
        }
        token_cache = self.engine.token_cache_stats()
        if token_cache.get("enabled"):
            stats["token_cache"] = token_cache
        stats["routing"] = self.router.stats()
        stats["pending_sweeps"] = sorted(self.pending_sweeps)
        if self.balancer is not None:
            stats["balancer"] = self.balancer.stats()
        if self.replicated:
            stats["replication"] = {
                name: self.replicas[name].status() for name in self.shard_names}
        return stats
