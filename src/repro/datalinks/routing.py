"""Replication-aware routing: epoched placement, per-node roles, read/write routes.

Before this layer existed, read/write routing logic was smeared across
:class:`~repro.datalinks.sharding.ShardedDataLinksDeployment` (hard-wired
``replica.serving`` pointers), :class:`~repro.datalinks.replication.ReplicatedShard`
(role bookkeeping) and the engine's connection plumbing (URLs name the
*logical* shard, but a failed-over shard's traffic must reach the serving
node).  This module centralizes all of it:

* :class:`ShardRouter` owns the **base placement**: stable hash
  partitioning of URL path prefixes onto logical shard names (moved here
  from ``sharding.py``; re-exported there for compatibility).  Since the
  epoched-placement refactor it is only the *first layer* of placement:
  the router wraps it in a versioned
  :class:`~repro.datalinks.placement.PlacementMap`, which overlays the
  prefixes that ``rebalance_prefix`` has moved and stamps every placement
  answer with the current **placement epoch**.  Placement consumers no
  longer "read a dict" -- they validate an epoch: the engine stamps its
  DLFM messages with the epoch it routed by, every DLFM checks arriving
  envelopes and refuses link/unlink work for prefixes it no longer owns
  with a :class:`~repro.errors.PlacementEpochError` naming the current
  owner, and the engine redirects and retries
  (:meth:`ReplicationRouter.owner_shard` is the resolution every consumer
  goes through);
* :class:`ReplicationRouter` owns **roles and routes** on top of placement.
  Every node of a shard has a dynamic role -- :data:`NodeRole.SERVING` (holds
  the epoch lease; the only node that may take link/unlink branches and vote
  in two-phase commit), :data:`NodeRole.WITNESS` (healthy subscriber of the
  serving node's WAL stream; may serve bounded-staleness follower reads),
  :data:`NodeRole.FENCED` (deposed ex-serving node that has not rejoined the
  stream; refuses everything) and :data:`NodeRole.DOWN` (crashed) -- and the
  router answers three questions:

  - :meth:`ReplicationRouter.writable_node` -- which physical node takes
    *write* traffic addressed to a logical shard.  The DataLinks engine
    resolves every DLFM connection lookup through this, which is what makes
    failover **writable**: after promotion, link/unlink branches and 2PC
    prepare/commit for ``shard0`` transparently reach ``shard0-r``;
  - :meth:`ReplicationRouter.route_read` -- which node serves the next read.
    Reads are load-balanced round-robin over the serving node plus every
    *eligible* witness: a witness is eligible only while the serving node is
    up (the staleness bound is derived from the shipper's lag against the
    live stream) and its lag is within ``max_follower_lag`` records;
  - :meth:`ReplicationRouter.route_write` -- the serving node, or a
    :class:`~repro.errors.DaemonUnavailableError` naming the cure.

  Per-role routing counters (reads served by the serving node vs witnesses,
  writes, follower rejections) are surfaced through :meth:`ReplicationRouter.stats`
  and land in ``ShardedDataLinksDeployment.stats()["routing"]``.

The router holds no replication state of its own: roles are derived on
demand from the :class:`~repro.datalinks.replication.EpochRegistry` (who
holds the lease) and each :class:`~repro.datalinks.replication.ReplicatedShard`
(who subscribes to whose stream, and how far behind), so routing decisions
can never disagree with the fencing checks the DLFMs enforce themselves.
The same principle holds for placement: the per-node
:class:`~repro.datalinks.placement.PlacementGuard` derives ownership from
the *same* :class:`~repro.datalinks.placement.PlacementMap` the router
reads, so a moved prefix is fenced on its old owner the instant the map's
epoch bumps -- there is no propagation step a crash could lose.

Two epoch spaces coexist deliberately: the per-shard **lease epoch**
(who serves a shard; bumped by failover) and the cluster-wide
**placement epoch** (which shard owns a prefix; bumped by rebalancing).
"""

from __future__ import annotations

import hashlib

from repro.datalinks.placement import PlacementMap
from repro.errors import DaemonUnavailableError, DataLinksError


class NodeRole:
    """Dynamic role of one node within a replicated shard."""

    SERVING = "serving"    # holds the epoch lease; takes writes and 2PC
    WITNESS = "witness"    # healthy stream subscriber; may serve follower reads
    FENCED = "fenced"      # deposed ex-serving node, not rejoined; serves nothing
    DOWN = "down"          # crashed


class ShardRouter:
    """Stable hash placement of file paths onto named shards.

    Paths are keyed by their first ``prefix_depth`` components, so files in
    the same directory subtree land on the same shard (cheap directory
    listings, one enlisted shard for subtree-local transactions).
    """

    def __init__(self, shard_names: list[str], prefix_depth: int = 1):
        if not shard_names:
            raise DataLinksError("a shard router needs at least one shard")
        self.shard_names = list(shard_names)
        self.prefix_depth = max(1, int(prefix_depth))
        # Both maps memoize pure functions of the (fixed) shard list and
        # depth; workloads hammer a small set of paths, so hit rates are
        # high.  Cleared when full rather than evicted -- cheap and bounded.
        self._prefix_cache: dict[str, str] = {}
        self._key_cache: dict[str, str] = {}

    def prefix_of(self, path: str) -> str:
        try:
            return self._prefix_cache[path]
        except KeyError:
            pass
        components = [part for part in path.split("/") if part]
        prefix = "/" + "/".join(components[: self.prefix_depth])
        if len(self._prefix_cache) > 8192:
            self._prefix_cache.clear()
        self._prefix_cache[path] = prefix
        return prefix

    def shard_of_key(self, key: str) -> str:
        """Hash an already-derived routing key (a prefix) onto a shard.

        Exposed separately from :meth:`shard_of` so an overlay that deepens
        the effective prefix of one subtree (a *split* in the
        :class:`~repro.datalinks.placement.PlacementMap`) can hash the
        deeper prefix directly -- running it back through
        :meth:`prefix_of` would re-shallow it.
        """

        try:
            return self._key_cache[key]
        except KeyError:
            pass
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        index = int.from_bytes(digest[:8], "big") % len(self.shard_names)
        shard = self.shard_names[index]
        if len(self._key_cache) > 8192:
            self._key_cache.clear()
        self._key_cache[key] = shard
        return shard

    def shard_of(self, path: str) -> str:
        """The shard responsible for *path* (stable across runs/processes)."""

        return self.shard_of_key(self.prefix_of(path))


class ReplicationRouter:
    """Roles and routes for every shard of a deployment.

    ``follower_reads`` switches witness read service on or off deployment-wide;
    ``max_follower_lag`` is the staleness bound, in WAL records the witness
    has not applied -- **durable or still buffered** (under group commit a
    transaction can be committed and visible on the serving node before its
    records are forced; a witness missing them has neither the rows nor the
    link-time access constraints on its mirrored files, so it must not
    count as caught up).  Because shipping is pipelined on every log force,
    a quiesced witness sits at lag 0; a paused stream, an undrained
    group-commit window or in-flight transactions push it over the bound
    and the router quietly falls back to the serving node (counted in
    ``follower_rejects``).
    """

    def __init__(self, placement, *, follower_reads: bool = True,
                 max_follower_lag: int = 0):
        #: The versioned placement map.  A bare :class:`ShardRouter` is
        #: wrapped, so every consumer sees the epoch-stamped overlay.
        self.placement = placement if isinstance(placement, PlacementMap) \
            else PlacementMap(placement)
        self.follower_reads = follower_reads
        self.max_follower_lag = max(0, int(max_follower_lag))
        self._singles: dict[str, object] = {}     # shard -> FileServer
        self._replicas: dict[str, object] = {}    # shard -> ReplicatedShard
        self._round_robin: dict[str, int] = {}
        #: Candidate membership (node names) the round-robin position was
        #: advanced against, per shard; a membership change resets the
        #: position so fairness restarts cleanly instead of inheriting an
        #: arbitrary phase from the old candidate count.
        self._round_robin_members: dict[str, tuple] = {}
        self.reads_by_role = {NodeRole.SERVING: 0, NodeRole.WITNESS: 0}
        self.writes_routed = 0
        self.follower_rejects = 0
        self.failover_rewrites = 0   # writes that reached a non-home serving node
        self.stale_epoch_redirects = 0   # writes re-routed after a PlacementEpochError
        self.stale_content_skips = 0     # witnesses skipped for a stale file copy
        #: Per-prefix routed traffic, keyed by the *effective* routing
        #: prefix at the time of the operation.  They are counters, not
        #: a log, so a prefix split simply starts new (deeper) keys.
        self.prefix_reads: dict[str, int] = {}
        self.prefix_writes: dict[str, int] = {}
        #: Per-*window* deltas of the same traffic, accumulated as each
        #: operation is noted and drained by
        #: :meth:`take_traffic_window`.  The balancer control plane used
        #: to re-copy the full cumulative dicts every tick to diff them;
        #: keeping the delta incrementally makes a tick cost
        #: O(prefixes touched since the last tick) instead of
        #: O(prefixes ever touched).
        self.window_reads: dict[str, int] = {}
        self.window_writes: dict[str, int] = {}

    # -------------------------------------------------------------- registration --
    def register_shard(self, shard: str, server) -> None:
        """Register an unreplicated shard: one node, always serving."""

        self._singles[shard] = server

    def register_replicated(self, shard: str, replica) -> None:
        """Register a replicated shard; roles are derived from *replica*."""

        self._replicas[shard] = replica
        replica.router = self
        self._singles.pop(shard, None)

    @property
    def shards(self) -> list[str]:
        return sorted(set(self._singles) | set(self._replicas))

    # ----------------------------------------------------------------- placement --
    def shard_of(self, path: str) -> str:
        """The shard currently owning *path* (override-aware, epoch-stamped)."""

        return self.placement.shard_of(path)

    def prefix_of(self, path: str) -> str:
        return self.placement.prefix_of(path)

    @property
    def placement_epoch(self) -> int:
        return self.placement.epoch

    # ------------------------------------------------------------ traffic notes --
    def note_read(self, path: str) -> None:
        """Count one routed read against *path*'s effective prefix."""

        placement = self.placement
        try:
            prefix = placement._prefix_cache[path]
        except KeyError:
            prefix = placement.prefix_of(path)
        reads = self.prefix_reads
        try:
            reads[prefix] += 1
        except KeyError:
            reads[prefix] = 1
        window = self.window_reads
        try:
            window[prefix] += 1
        except KeyError:
            window[prefix] = 1

    def note_write(self, path: str) -> None:
        """Count one routed write (link/unlink/ingest) against *path*'s prefix."""

        placement = self.placement
        try:
            prefix = placement._prefix_cache[path]
        except KeyError:
            prefix = placement.prefix_of(path)
        writes = self.prefix_writes
        try:
            writes[prefix] += 1
        except KeyError:
            writes[prefix] = 1
        window = self.window_writes
        try:
            window[prefix] += 1
        except KeyError:
            window[prefix] = 1

    def take_traffic_window(self) -> dict[str, int]:
        """Drain and return the per-prefix deltas since the last drain.

        Reads and writes are summed into one ``{prefix: operations}``
        dict -- the traffic *window* the balancer's decisions are based
        on.  Draining resets the accumulators, so consecutive windows
        partition the noted traffic exactly; the first drain covers
        everything noted since the router was built.
        """

        window = self.window_reads
        self.window_reads = {}
        writes = self.window_writes
        self.window_writes = {}
        if writes:
            if not window:
                return writes
            get = window.get
            for prefix, count in writes.items():
                window[prefix] = get(prefix, 0) + count
        return window

    def owner_shard(self, server: str, path: str) -> str:
        """Resolve a URL's ``(server, path)`` pair to the current owner shard.

        A DATALINK URL names the shard that owned the path's prefix when
        the link was made; after a rebalance the current owner differs.
        The URL's server stays authoritative unless a move overrode it
        (so manually placed files on plain file servers are untouched),
        and non-shard servers resolve to themselves.
        """

        if server not in self._singles and server not in self._replicas:
            return server
        placement = self.placement
        try:
            prefix = placement._prefix_cache[path]
        except KeyError:
            prefix = placement.prefix_of(path)
        return placement.owner_of(prefix, default=server)

    # --------------------------------------------------------------------- roles --
    def roles(self, shard: str) -> dict[str, str]:
        """``{node_name: role}`` for every node of *shard*.

        Role derivation lives on the :class:`ReplicatedShard` (it owns the
        stream state the roles depend on); the router only reads it, so
        routing decisions can never disagree with the shard's own
        accounting.
        """

        replica = self._replicas.get(shard)
        if replica is not None:
            return replica.roles()
        server = self._singles.get(shard)
        if server is None:
            raise DataLinksError(f"unknown shard {shard!r}")
        return {server.name: NodeRole.SERVING if server.running
                else NodeRole.DOWN}

    def role_of(self, shard: str, node_name: str) -> str:
        return self.roles(shard)[node_name]

    def serving_node(self, shard: str) -> str:
        """Name of the node currently holding *shard*'s serving lease."""

        try:
            return self._replicas[shard].serving_name
        except KeyError:
            pass
        server = self._singles.get(shard)
        if server is None:
            raise DataLinksError(f"unknown shard {shard!r}")
        return server.name

    def writable_node(self, name: str) -> str:
        """Resolve a logical server name to the physical node taking writes.

        Identity for anything that is not a registered shard (plain file
        servers, or a witness addressed directly), so the DataLinks engine
        can resolve every connection lookup through this unconditionally.
        """

        try:
            replica = self._replicas[name]
        except KeyError:
            return name
        serving = replica.serving_name
        if serving != name:
            self.failover_rewrites += 1
        return serving

    # -------------------------------------------------------------------- routes --
    def serving_server(self, shard: str):
        """The serving node of *shard*; raises when it is down."""

        try:
            replica = self._replicas[shard]
        except KeyError:
            replica = None
        if replica is not None:
            server = replica.nodes[replica.serving_name]
        else:
            server = self._singles.get(shard)
            if server is None:
                raise DataLinksError(f"unknown shard {shard!r}")
        if not server.running:
            hint = "; fail_over() promotes a witness" if replica is not None \
                else ""
            raise DaemonUnavailableError(
                f"file server {server.name!r} is down{hint}")
        return server

    def route_write(self, shard: str):
        """The node that takes link/unlink traffic for *shard* right now."""

        server = self.serving_server(shard)
        self.writes_routed += 1
        return server

    def follower_ok(self, shard: str, node_name: str,
                    path: str | None = None) -> bool:
        """May *node_name* serve a follower read of *shard* right now?

        This is also the DLFM-side read gate: a witness only accepts
        read-path upcalls while the router would have routed a read to it,
        so routing policy and fencing enforcement cannot drift apart.

        With *path*, the witness is additionally disqualified when its
        physical copy of that file is stale: an update-in-place rewrites
        bytes on the serving node, but the WAL stream carries only the
        metadata row, so until the witness re-mirrors (rejoin, resync or
        promotion) its copy is the pre-update content.  Such reads fall
        back to the serving node and are counted in
        ``stale_content_skips``.
        """

        if not self.follower_reads:
            return False
        try:
            replica = self._replicas[shard]
        except KeyError:
            return False
        if not replica.follower_eligible(node_name,
                                         max_lag=self.max_follower_lag):
            return False
        if path is not None and replica.content_stale(node_name, path):
            self.stale_content_skips += 1
            return False
        return True

    def read_candidates(self, shard: str, path: str | None = None) -> list:
        """Read-eligible nodes, serving node first (may be empty)."""

        try:
            replica = self._replicas[shard]
        except KeyError:
            server = self._singles.get(shard)
            if server is None:
                raise DataLinksError(f"unknown shard {shard!r}") from None
            return [server] if server.running else []
        serving_name = replica.serving_name
        serving = replica.nodes[serving_name]
        candidates = []
        if serving.running:
            candidates.append(serving)
        for name, node in replica.nodes.items():
            if name == serving_name:
                continue
            if self.follower_ok(shard, name, path=path):
                candidates.append(node)
            elif node.running and replica.is_subscribed(name):
                # A healthy subscriber skipped only by the staleness bound
                # (stream lag or a stale physical copy, or the policy
                # switch) is a rejected follower read.
                self.follower_rejects += 1
        return candidates

    def route_read(self, shard: str, path: str | None = None):
        """Pick the node for the next read: round-robin over the candidates."""

        candidates = self.read_candidates(shard, path=path)
        if not candidates:
            # Same failure surface as the write path: name the cure.
            self.serving_server(shard)          # raises with the right hint
            raise DaemonUnavailableError(       # pragma: no cover - defensive
                f"no read-eligible node for shard {shard!r}")
        # The position is kept wrapped at the candidate count (it used to
        # grow without bound) and resets when the candidate set changes:
        # carrying an old position across a membership change (say a witness
        # crash shrinking 3 candidates to 2) lands on an arbitrary phase and
        # skews which nodes absorb the next reads.
        members = tuple([node.name for node in candidates])
        try:
            same = self._round_robin_members[shard] == members
        except KeyError:
            same = False
        if not same:
            self._round_robin_members[shard] = members
            index = 0
        else:
            try:
                index = self._round_robin[shard]
            except KeyError:
                index = 0
        self._round_robin[shard] = (index + 1) % len(candidates)
        chosen = candidates[index]
        role = NodeRole.SERVING if chosen.name == self.serving_node(shard) \
            else NodeRole.WITNESS
        self.reads_by_role[role] += 1
        return chosen

    def follower_lag(self, shard: str, node_name: str) -> int | None:
        """Stream lag (records) of one subscriber, or ``None`` off-stream."""

        replica = self._replicas.get(shard)
        if replica is None:
            return None
        return replica.subscriber_lag(node_name)

    # --------------------------------------------------------------------- stats --
    def stats(self) -> dict:
        """Per-role routing counters plus the current role map."""

        return {
            "follower_reads": self.follower_reads,
            "max_follower_lag": self.max_follower_lag,
            "reads_by_role": dict(self.reads_by_role),
            "writes_routed": self.writes_routed,
            "follower_rejects": self.follower_rejects,
            "failover_rewrites": self.failover_rewrites,
            "stale_epoch_redirects": self.stale_epoch_redirects,
            "stale_content_skips": self.stale_content_skips,
            "prefix_traffic": {"reads": dict(self.prefix_reads),
                               "writes": dict(self.prefix_writes)},
            "placement": self.placement.stats(),
            "roles": {shard: self.roles(shard) for shard in self.shards},
        }
