"""Privileged file access used by the DLFM.

The DLFM daemons run as a privileged user on the file server and reach the
native file system directly (they are *below* DLFS), so their file operations
never recurse into DataLinks interception.  :class:`FileServerFiles` wraps a
logical file system mounted directly over the physical file system together
with the DLFM's credentials and the uid used when files are taken over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.inode import FileAttributes
from repro.fs.logical import LogicalFileSystem
from repro.fs.vfs import Credentials

#: uid given to files taken over by the DBMS ("changing its ownership").
DEFAULT_DBMS_UID = 500
DEFAULT_DBMS_GID = 500

#: Directory where in-flight versions of rolled-back updates are parked
#: ("the in-flight version of the file is moved to a temporary directory").
TEMP_DIRECTORY = "/.dlfm_tmp"


@dataclass
class FileServerFiles:
    """Raw (non-intercepted) file operations for one file server."""

    lfs: LogicalFileSystem
    dlfm_cred: Credentials
    dbms_uid: int = DEFAULT_DBMS_UID
    dbms_gid: int = DEFAULT_DBMS_GID

    # -- queries -------------------------------------------------------------------
    def stat(self, path: str) -> FileAttributes:
        return self.lfs.stat(path, self.dlfm_cred)

    def exists(self, path: str) -> bool:
        return self.lfs.exists(path, self.dlfm_cred)

    def ino_of(self, path: str) -> int:
        return self.stat(path).ino

    def read(self, path: str) -> bytes:
        return self.lfs.read_file(path, self.dlfm_cred)

    # -- mutations -----------------------------------------------------------------
    def overwrite(self, path: str, content: bytes) -> None:
        """Replace a file's content without changing its ownership or mode."""

        self.lfs.write_file(path, content, self.dlfm_cred, create=False)

    def chown(self, path: str, uid: int, gid: int) -> None:
        self.lfs.chown(path, uid, gid, self.dlfm_cred)

    def chmod(self, path: str, mode: int) -> None:
        self.lfs.chmod(path, mode, self.dlfm_cred)

    def unlink(self, path: str) -> None:
        self.lfs.unlink(path, self.dlfm_cred)

    def take_over(self, path: str, mode: int = 0o400) -> None:
        """Transfer ownership of *path* to the DBMS user and set *mode*."""

        self.chown(path, self.dbms_uid, self.dbms_gid)
        self.chmod(path, mode)

    def restore_ownership(self, path: str, uid: int, gid: int, mode: int) -> None:
        """Give *path* back to its original owner with its original mode."""

        self.chown(path, uid, gid)
        self.chmod(path, mode)

    def park_in_flight(self, path: str, content: bytes, suffix: int) -> str:
        """Save an in-flight (rolled back) version under the temp directory."""

        self.lfs.makedirs(TEMP_DIRECTORY, self.dlfm_cred)
        name = path.strip("/").replace("/", "__")
        parked = f"{TEMP_DIRECTORY}/{name}.{suffix}"
        self.lfs.write_file(parked, content, self.dlfm_cred, create=True)
        return parked
