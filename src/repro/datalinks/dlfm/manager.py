"""The DataLinks File Manager.

One :class:`DataLinksFileManager` runs on each file server.  It owns the
repository, the link/unlink logic, the token registry, the Sync table, update
tracking, versioning/archiving and coordinated backup/restore, and it exposes

* a *connection* interface used by the DataLinks engine in the host DBMS
  (link/unlink inside host transactions, two-phase commit), and
* an *upcall* interface used by DLFS (token validation at lookup, access
  checks at open, close processing).

This module is the heart of the paper's Section 4 (update in-place).
"""

from __future__ import annotations

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.control_modes import _MODES_BY_CODE as _MODES
from repro.datalinks.datalink_type import DatalinkOptions
from repro.datalinks.dlfm.archive import ArchiveServer
from repro.datalinks.dlfm.branches import BranchManager
from repro.datalinks.dlfm.files import DEFAULT_DBMS_UID, FileServerFiles
from repro.datalinks.dlfm.link_manager import LinkManager, apply_link_constraints
from repro.datalinks.dlfm.repository import DLFMRepository
from repro.datalinks.tokens import TokenManager, TokenType
from repro.errors import (
    AccessDeniedError,
    ControlModeError,
    UpdateInProgressError,
)
from repro.simclock import SimClock, synchronized_call
from repro.storage.backup import BackupImage
from repro.storage.database import Database
from repro.storage.transaction import Transaction

#: Permission given to a taken-over file while an rfd update is in progress.
_TAKEOVER_WRITE_MODE = 0o600
_WRITE_BITS = 0o222


class DataLinksFileManager:
    """DLFM for one file server."""

    def __init__(self, server_name: str, files: FileServerFiles,
                 archive: ArchiveServer, clock: SimClock | None = None,
                 token_secret: str | None = None):
        self.server_name = server_name
        self.clock = clock
        self.files = files
        self.archive = archive
        self.token_secret = token_secret or f"dlfm-secret-{server_name}"
        self.tokens = TokenManager(self.token_secret, clock)
        repository_scale = clock.costs.dlfm_repository_scale if clock is not None else 1.0
        # The repository's charges are label-prefixed so its scaled
        # statements never conflate with host-database charges for the same
        # primitive in clock statistics.
        self.repository = DLFMRepository(
            Database(f"dlfm-{server_name}", clock, cost_scale=repository_scale,
                     stats_prefix="dlfm."))
        self.branches = BranchManager(self.repository.db)
        self.links = LinkManager(self.repository, files,
                                 state_id_provider=self._host_state_id)
        self._engine = None
        self._engine_name: str | None = None
        self.running = True
        #: Epoch lease (:class:`~repro.datalinks.replication.EpochGuard`)
        #: when this DLFM belongs to a replicated shard; ``None`` otherwise.
        self.fencing = None
        #: Placement view (:class:`~repro.datalinks.placement.PlacementGuard`)
        #: when this DLFM belongs to an epoched deployment; link/unlink of a
        #: prefix this shard no longer owns is refused with a
        #: :class:`~repro.errors.PlacementEpochError` redirect.
        self.placement_guard = None
        #: Follower-read gate: a callable that says whether this node may
        #: serve read-path upcalls *despite* not holding the serving lease
        #: (a healthy witness within the router's staleness bound).
        self.read_gate = None
        self.replica = None
        self.replica_soft = None
        #: Dual-serve snapshots for prefix hand-offs in flight:
        #: ``host_txn_id -> {ino: linked_file row}``.  The export deletes
        #: the repository rows inside its branch, but reads of the moving
        #: prefix must keep succeeding on this node until the hand-off
        #: commits; the read-path upcalls fall back to these rows.
        #: Volatile by design: a crash aborts the branch (restoring the
        #: real rows) and loses the snapshot with it.
        self._moving_exports: dict[int, dict] = {}

    # ---------------------------------------------------------------- wiring -----
    def attach_engine(self, engine) -> None:
        """Called by the DataLinks engine when this file server is registered."""

        self._engine = engine
        self.links.set_state_id_provider(self._host_state_id)

    def _host_state_id(self) -> int:
        if self._engine is None:
            return int(self.repository.db.state_identifier())
        return int(self._engine.state_identifier())

    @property
    def dbms_uid(self) -> int:
        return self.files.dbms_uid if self.files is not None else DEFAULT_DBMS_UID

    def _now(self) -> float:
        clock = self.clock
        return clock._now if clock is not None else 0.0

    # -------------------------------------------------------------- fencing -----
    def set_fencing(self, guard) -> None:
        """Attach an epoch lease; upcalls refuse service once it is revoked."""

        self.fencing = guard

    def set_read_gate(self, gate) -> None:
        """Attach the follower-read gate (see :attr:`read_gate`)."""

        self.read_gate = gate

    def set_placement(self, guard) -> None:
        """Attach this node's view of the cluster placement map.

        The guard derives prefix ownership from the shared map on every
        check (nothing is persisted per node), so a crash cannot lose a
        placement fence and enforcement cannot drift from routing.
        """

        self.placement_guard = guard

    def check_placement(self, path: str) -> None:
        """Refuse write traffic for a prefix this shard does not own.

        Raises :class:`~repro.errors.PlacementEpochError` (naming the
        current owner -- the redirect) for a moved prefix, and a retryable
        :class:`~repro.errors.PlacementError` for a prefix whose hand-off
        is in flight.  A no-op outside epoched deployments.
        """

        if self.placement_guard is not None:
            self.placement_guard.check_path(path)

    def check_placement_epoch(self, observed: int) -> None:
        """Daemon envelope gate: reject requests stamped with a stale epoch."""

        if self.placement_guard is not None:
            self.placement_guard.check_epoch(observed)

    def is_fenced(self) -> bool:
        return self.fencing is not None and self.fencing.fenced

    def _check_fencing(self) -> None:
        if self.fencing is not None:
            self.fencing.check()

    def _check_read_service(self) -> None:
        """Fencing for the read path: serving nodes and eligible witnesses.

        Write-path operations always require the serving lease, but a
        healthy witness within the router's staleness bound may serve
        token validation and read opens -- that is the follower-read path.
        A deposed node (no lease, not back on the stream) still raises
        :class:`~repro.errors.FencedNodeError` here.
        """

        fencing = self.fencing
        if fencing is None:
            return
        # ``fencing.fenced`` written out inline (two frames per read-path
        # upcall otherwise): current-serving lookup straight off the
        # registry, with the property's KeyError convention preserved.
        try:
            if fencing.registry._serving[fencing.shard] == fencing.node:
                return
        except KeyError:
            if fencing.node is None:
                return
        if self.read_gate is not None and self.read_gate():
            return
        fencing.check()

    # ------------------------------------------------- engine-facing operations --
    # Fencing applies to the write path too: a fenced ex-primary must not
    # take new branches or vote on them, or a link committed there would
    # split-brain against the serving witness (which is not consuming the
    # paused WAL stream).  Committing or aborting an *existing* prepared
    # branch stays allowed -- that only executes the coordinator's durable
    # decision, which predates the fence.
    def begin_branch(self, host_txn_id: int) -> None:
        self._check_fencing()
        self.branches.branch_for(host_txn_id)

    def has_branch(self, host_txn_id: int) -> bool:
        return self.branches.has_branch(host_txn_id)

    def prepare_branch(self, host_txn_id: int) -> bool:
        self._check_fencing()
        return self.branches.prepare(host_txn_id)

    def commit_branch(self, host_txn_id: int) -> None:
        self.branches.commit(host_txn_id)
        self._moving_exports.pop(host_txn_id, None)

    def abort_branch(self, host_txn_id: int) -> None:
        self.branches.abort(host_txn_id)
        self._moving_exports.pop(host_txn_id, None)

    def link_file(self, host_txn_id: int, path: str,
                  options: DatalinkOptions) -> dict:
        """Link *path* as part of the host transaction *host_txn_id*."""

        self._check_fencing()
        self.check_placement(path)
        branch = self.branches.branch_for(host_txn_id)
        return self.links.link_file(branch.local_txn, path, options)

    def unlink_file(self, host_txn_id: int, path: str) -> dict:
        """Unlink *path* as part of the host transaction *host_txn_id*."""

        self._check_fencing()
        self.check_placement(path)
        branch = self.branches.branch_for(host_txn_id)
        return self.links.unlink_file(branch.local_txn, path)

    # ------------------------------------------------- prefix hand-off ----------
    # The two participant sides of an online prefix rebalance (see
    # :mod:`repro.datalinks.placement`).  Both run inside an ordinary
    # two-phase-commit branch of the coordinating host transaction, so
    # crash handling (durable PREPARE votes, presumed abort, in-doubt
    # resolution from the host outcome) is the machinery every other
    # branch already uses.  Neither side consults the placement guard:
    # the hand-off is the operation that *changes* the map.
    def rebalance_export(self, host_txn_id: int, prefix: str) -> dict:
        """Hand the prefix's repository state off: delete and return it.

        Refuses (with a retryable :class:`~repro.errors.PlacementError`)
        while any file under the prefix has an open Sync entry, an update
        in flight or an un-archived job -- the move must not race close
        processing or strand an archive queue entry on the wrong shard.
        """

        from repro.datalinks.placement import path_under
        from repro.errors import PlacementError

        self._check_fencing()
        branch = self.branches.branch_for(host_txn_id)
        rows, versions = [], []
        for row in self.repository.linked_files():
            path = row["path"]
            if not path_under(prefix, path):
                continue
            if self.repository.sync_entries(path):
                raise PlacementError(
                    f"cannot hand {prefix!r} off: {path!r} is open "
                    f"({len(self.repository.sync_entries(path))} Sync "
                    f"entries); retry when the opens drain")
            if self.repository.tracking(path) is not None:
                raise PlacementError(
                    f"cannot hand {prefix!r} off: an update of {path!r} is "
                    f"in progress; retry after it commits or aborts")
            if self.repository.pending_archive_jobs(path):
                raise PlacementError(
                    f"cannot hand {prefix!r} off: {path!r} has pending "
                    f"archive jobs; run the archiver first")
            rows.append({key: value for key, value in row.items()
                         if not key.startswith("_")})
            versions.extend(
                {key: value for key, value in version.items()
                 if not key.startswith("_")}
                for version in self.repository.versions(path))
        # Dual-serve: reads of the moving prefix keep resolving on this
        # node between these deletes and the hand-off commit (the bytes
        # are still here and the tokens were signed here).  The read-path
        # upcalls fall back to this snapshot; commit or abort drops it.
        self._moving_exports[host_txn_id] = {row["ino"]: dict(row)
                                             for row in rows}
        for row in rows:
            self.repository.delete_versions(row["path"], branch.local_txn)
            self.repository.delete_linked_file(row["path"], branch.local_txn)
        return {"rows": rows, "versions": versions}

    def rebalance_import(self, host_txn_id: int, rows: list,
                         versions: list) -> dict:
        """Adopt a handed-off prefix: re-insert rows bound to this node.

        The file content must already have been copied (below DLFS) by the
        coordinator; inode numbers are rebound to this node's file system,
        link-time access constraints are re-applied to the local copies
        (with abort compensation, like a fresh link), and the version
        chain re-attaches to the same shared-archive objects.
        """

        from repro.errors import PlacementError

        self._check_fencing()
        branch = self.branches.branch_for(host_txn_id)
        imported = 0
        for row in rows:
            row = {key: value for key, value in row.items()
                   if not key.startswith("_")}
            path = row["path"]
            if self.repository.linked_file(path) is not None:
                raise PlacementError(
                    f"cannot import {path!r}: already linked on "
                    f"{self.server_name!r}")
            if not self.files.exists(path):
                raise PlacementError(
                    f"content hand-off incomplete: {path!r} has no local "
                    f"copy on {self.server_name!r}")
            attrs = self.files.stat(path)
            row["ino"] = attrs.ino
            mode = ControlMode.from_string(row["control_mode"])
            row["taken_over"] = mode.takes_over_on_link
            self.repository.insert_linked_file(row, branch.local_txn)
            apply_link_constraints(
                self.files, branch.local_txn, path, attrs, mode,
                restore_to=(row["original_uid"], row["original_gid"],
                            row["original_mode"]),
                only_if_needed=True)
            imported += 1
        self.repository.import_version_rows(versions, branch.local_txn)
        return {"imported": imported, "versions": len(versions)}

    # ------------------------------------------------- soft-state dispatch ------
    # Token-registry and Sync entries are node-local soft state.  On a
    # serving node they live in the repository (and replicate with its WAL
    # stream); on a witness serving follower reads they go to the ephemeral
    # WitnessSoftState instead, because the witness repository is redo-only
    # and its heaps must keep mirroring the serving node's row ids.  Reads
    # see the union: entries replicated from the serving node plus the
    # node's own.
    def _register_token_entry(self, path: str, userid: int, token_type: str,
                              expires_at: float) -> None:
        if self.replica_soft is not None:
            self.replica_soft.add_token_entry(path, userid, token_type,
                                               expires_at)
        else:
            self.repository.add_token_entry(path, userid, token_type,
                                            expires_at)

    def _find_token_entry(self, path: str, userid: int, *,
                          for_write: bool) -> dict | None:
        now = self._now()
        if self.replica_soft is not None:
            entry = self.replica_soft.find_token_entry(
                path, userid, for_write=for_write, now=now)
            if entry is not None:
                return entry
        return self.repository.find_token_entry(path, userid,
                                                for_write=for_write, now=now)

    def _sync_entries_of(self, path: str) -> list[dict]:
        entries = list(self.repository.sync_entries(path))
        if self.replica_soft is not None:
            entries.extend(self.replica_soft.sync_entries_for(path))
        return entries

    def _add_sync_entry(self, path: str, access: str, userid: int) -> None:
        if self.replica_soft is not None:
            self.replica_soft.add_sync_entry(path, access, userid)
        else:
            self.repository.add_sync_entry(path, access, userid)

    def _remove_sync_entry(self, path: str, access: str, userid: int) -> None:
        if self.replica_soft is not None:
            # Never fall through to the repository on a witness: its heap
            # rows are replicas of the serving node's and are removed by
            # redo when the serving node's own close ships over.  A close
            # whose soft entry is gone (e.g. wiped by a stream re-source)
            # has nothing local left to clean up.
            self.replica_soft.remove_sync_entry(path, access, userid)
            return
        self.repository.remove_sync_entry(path, access, userid)

    # -------------------------------------------------- upcall-facing operations --
    def _lookup_link_row(self, ino: int) -> dict | None:
        """A linked-file row by inode, dual-serving hand-offs in flight.

        Falls back to the moving-export snapshots so reads of a prefix
        whose rows were just deleted inside an open rebalance branch keep
        resolving until the hand-off commits.  Write paths are unaffected:
        they run :meth:`check_placement` on the row's path, which refuses
        moving prefixes with a retryable error.
        """

        # ``self.repository.linked_file_by_ino(ino)`` with its select_one
        # wrapper unrolled: this lookup runs once per validated read.
        rows = self.repository.db.select("linked_files", {"ino": ino},
                                         lock=False)
        if rows:
            return rows[0]
        for snapshot in self._moving_exports.values():
            if ino in snapshot:
                return snapshot[ino]
        return None

    def upcall_validate_token(self, ino: int, token_text: str, userid: int) -> dict:
        """fs_lookup-time token validation; creates a token registry entry.

        The entry is keyed by *user id* (not process id) so that a process-id
        reuse cannot leak access, exactly as argued in Section 4.1.  Served
        by the serving node or -- under the follower-read gate -- a healthy
        witness, whose entry goes to its local soft state.
        """

        self._check_read_service()
        row = self._lookup_link_row(ino)
        if row is None:
            return {"linked": False}
        token = self.tokens.validate(token_text, row["path"])
        # ``_value_`` reads the member's code as a plain attribute; ``.value``
        # goes through the enum's DynamicClassAttribute descriptor, two
        # frames per read on this per-lookup path.
        token_code = token.token_type._value_
        self._register_token_entry(row["path"], userid, token_code,
                                   token.expires_at)
        return {"linked": True, "token_type": token_code,
                "expires_at": token.expires_at}

    def upcall_check_open(self, ino: int, wants_write: bool, userid: int) -> dict:
        """fs_open-time access check.

        Invoked for files under full database control (owned by the DBMS) and,
        when the file server runs with strict read upcalls, for read opens of
        any file.  Non-full-control reads without strict synchronization are
        reported as unlinked so DLFS stays out of the data path.  Write opens
        require the serving lease; read opens pass the follower-read gate.
        """

        if wants_write:
            self._check_fencing()
        else:
            self._check_read_service()
        row = self._lookup_link_row(ino)
        if row is None:
            return {"linked": False}
        code = row["control_mode"]
        try:
            # from_string's canonical-code probe, inline (hot upcall path).
            mode = _MODES[code]
        except KeyError:
            mode = ControlMode.from_string(code)
        if wants_write:
            # A write open of a moved (or moving) prefix must not start an
            # update this shard can no longer commit.
            self.check_placement(row["path"])
            self._begin_file_update(row, mode, userid)
            return {"linked": True, "open_as_dbms": True, "mode": mode._value_}
        if mode.full_control:
            self._begin_read(row, mode, userid)
            return {"linked": True, "open_as_dbms": True, "mode": mode._value_}
        if row.get("strict_read_sync"):
            self._begin_strict_read(row, userid)
            return {"linked": True, "open_as_dbms": False, "mode": mode._value_}
        return {"linked": False}

    def upcall_write_open_fallback(self, ino: int, userid: int) -> dict:
        """Handles the rfd path: a write open failed because the file is read-only.

        DLFM verifies the file is linked in an update mode, checks the write
        token, takes the file over to grant write permission, and approves the
        retry (Section 4.2).
        """

        self._check_fencing()
        row = self._lookup_link_row(ino)
        if row is None:
            return {"linked": False}
        mode = ControlMode.from_string(row["control_mode"])
        if not mode.supports_update:
            raise ControlModeError(
                f"{row['path']!r} is linked in {mode.value} mode; "
                f"updates are not managed by the database")
        self.check_placement(row["path"])
        self._begin_file_update(row, mode, userid)
        return {"linked": True, "open_as_dbms": True, "mode": mode._value_}

    def upcall_file_closed(self, ino: int, was_write: bool, userid: int) -> dict:
        """fs_close-time processing: Sync cleanup, metadata update, archiving.

        Fencing applies here too: only the serving node may commit
        close-time metadata into the host database; read closes pass the
        follower-read gate (a witness only cleans its local Sync entry).
        """

        if was_write:
            self._check_fencing()
        else:
            self._check_read_service()
        row = self._lookup_link_row(ino)
        if row is None:
            return {"linked": False, "modified": False}
        path = row["path"]
        code = row["control_mode"]
        try:
            # from_string's canonical-code probe, inline (hot upcall path).
            mode = _MODES[code]
        except KeyError:
            mode = ControlMode.from_string(code)
        if was_write:
            self._remove_sync_entry(path, "write", userid)
        elif mode.full_control or row.get("strict_read_sync"):
            self._remove_sync_entry(path, "read", userid)
        if not was_write:
            return {"linked": True, "modified": False}

        tracking = self.repository.tracking(path)
        attrs = self.files.stat(path)
        modified = tracking is not None and (
            attrs.mtime > tracking["pre_mtime"] or attrs.size != tracking["pre_size"])
        if modified:
            self._commit_file_update(row, path, attrs)
        elif tracking is not None:
            self.repository.remove_tracking(path)
        if mode is ControlMode.RFD:
            self._release_takeover(row)
        return {"linked": True, "modified": modified}

    def upcall_is_linked(self, ino: int) -> dict:
        row = self._lookup_link_row(ino)
        if row is None:
            return {"linked": False}
        return {"linked": True, "mode": row["control_mode"], "path": row["path"]}

    # ------------------------------------------------------- update-in-place core --
    def _begin_read(self, row: dict, mode: ControlMode, userid: int) -> None:
        path = row["path"]
        if mode.requires_read_token:
            entry = self._find_token_entry(path, userid, for_write=False)
            if entry is None:
                raise AccessDeniedError(
                    f"no valid read token registered for user {userid} on {path!r}")
        # Writers are visible on a witness too: the serving node's Sync
        # entries replicate with the WAL stream, so a follower read is
        # serialized against an in-progress update exactly like a local one.
        writers = [entry for entry in self._sync_entries_of(path)
                   if entry["access"] == "write"]
        if writers:
            raise UpdateInProgressError(
                f"{path!r} is being updated; read access is serialized at open time")
        self._add_sync_entry(path, "read", userid)

    def _begin_strict_read(self, row: dict, userid: int) -> None:
        """Strict read synchronization for non-full-control files.

        This is the paper's sketched fix for the rfd window: record a read
        entry in the Sync table (so writers and unlink are serialized against
        this reader) without requiring a read token, since read access itself
        remains file-system controlled.
        """

        path = row["path"]
        writers = [entry for entry in self._sync_entries_of(path)
                   if entry["access"] == "write"]
        if writers:
            raise UpdateInProgressError(
                f"{path!r} is being updated; strict read synchronization rejects "
                f"the open")
        self._add_sync_entry(path, "read", userid)

    def _begin_file_update(self, row: dict, mode: ControlMode, userid: int) -> None:
        path = row["path"]
        if not mode.supports_update:
            raise AccessDeniedError(
                f"write access to {path!r} is not managed by the database "
                f"(mode {mode.value})")
        entry = self.repository.find_token_entry(path, userid, for_write=True,
                                                 now=self._now())
        if entry is None:
            raise AccessDeniedError(
                f"no valid write token registered for user {userid} on {path!r}")
        existing = self.repository.sync_entries(path)
        writers = [item for item in existing if item["access"] == "write"]
        if writers:
            raise UpdateInProgressError(
                f"{path!r} is already being updated by user {writers[0]['userid']}")
        if mode.full_control or row.get("strict_read_sync"):
            readers = [item for item in existing if item["access"] == "read"]
            if readers:
                raise UpdateInProgressError(
                    f"{path!r} is open for read by {len(readers)} application(s); "
                    f"write access is serialized at open time")
        if self.repository.pending_archive_jobs(path):
            raise UpdateInProgressError(
                f"the previous update of {path!r} is still being archived")

        attrs = self.files.stat(path)
        self.repository.add_sync_entry(path, "write", userid)
        self.repository.add_tracking({
            "path": path,
            "userid": userid,
            "started_at": self._now(),
            "pre_mtime": attrs.mtime,
            "pre_size": attrs.size,
            "restore_version": self.repository.latest_version_no(path),
        })
        if mode is ControlMode.RFD and not row["taken_over"]:
            # Temporarily take the file over so concurrent readers are kept
            # out by the file system's own access control (Section 4.2).
            self.files.take_over(path, mode=_TAKEOVER_WRITE_MODE)
            self.repository.update_linked_file(path, {"taken_over": True})

    def _commit_file_update(self, row: dict, path: str, attrs) -> None:
        """Commit a completed file update: metadata + repository in one transaction."""

        if self._engine is not None:
            # Close processing runs on this file server's clock domain but
            # drives a host transaction: the host cannot begin it before the
            # close happened, and the close does not return before the host
            # commit (the engine's 2PC back to this server merges the rest).
            with synchronized_call(self.clock, self._engine.clock):
                host_txn = self._engine.begin()
                host_txn.servers.add(self.server_name)
                branch = self.branches.branch_for(host_txn.txn_id)
                self.repository.update_linked_file(
                    path, {"last_size": attrs.size, "last_mtime": attrs.mtime},
                    branch.local_txn)
                self.repository.remove_tracking(path, branch.local_txn)
                self._engine.update_file_metadata(self.server_name, path,
                                                  attrs.size, attrs.mtime,
                                                  host_txn)
                self._engine.commit(host_txn)
        else:
            local_txn = self.repository.db.begin()
            self.repository.update_linked_file(
                path, {"last_size": attrs.size, "last_mtime": attrs.mtime},
                local_txn)
            self.repository.remove_tracking(path, local_txn)
            self.repository.db.commit(local_txn)
        if row["recovery"]:
            self.repository.enqueue_archive_job(path, self._host_state_id())

    def _release_takeover(self, row: dict) -> None:
        """Give an rfd file back to its owner, read-only, after the update."""

        path = row["path"]
        self.files.restore_ownership(path, row["original_uid"], row["original_gid"],
                                     row["original_mode"] & ~_WRITE_BITS)
        self.repository.update_linked_file(path, {"taken_over": False})

    # ----------------------------------------------------------- abort / restore --
    def abort_file_update(self, path: str) -> bool:
        """Roll back an in-progress (or just-closed, uncommitted) file update.

        Restores the last committed version from the archive and parks the
        in-flight content in the temporary directory, as Section 4.2 requires
        for transaction or system failure.
        """

        tracking = self.repository.tracking(path)
        row = self.repository.linked_file(path)
        restored = self.restore_last_committed(path, park_in_flight=True)
        if tracking is not None:
            self.repository.remove_tracking(path)
        self.repository.clear_sync_entries(path)
        if row is not None and ControlMode.from_string(row["control_mode"]) is ControlMode.RFD:
            self._release_takeover(row)
        return restored

    def restore_last_committed(self, path: str, *, max_state_id: int | None = None,
                               park_in_flight: bool = False,
                               create_missing: bool = False) -> bool:
        """Overwrite *path* with its most recent committed (archived) version.

        ``create_missing`` recreates the file (and its directories) when it
        does not exist locally -- the witness-promotion case, where the
        mirror may never have received the content.
        """

        version = self.repository.latest_version(path, max_state_id=max_state_id)
        if version is None:
            return False
        if park_in_flight:
            current = self.files.read(path)
            self.files.park_in_flight(path, current, suffix=version["version_no"] + 1)
        content = self.archive.retrieve(version["archive_id"],
                                        caller_clock=self.clock)
        if create_missing and not self.files.exists(path):
            directory = path.rsplit("/", 1)[0] or "/"
            if directory != "/":
                self.files.lfs.makedirs(directory, self.files.dlfm_cred)
            self.files.lfs.write_file(path, content, self.files.dlfm_cred,
                                      create=True)
        else:
            self.files.overwrite(path, content)
        return True

    # ------------------------------------------------------------------ archiving --
    def process_archive_jobs(self) -> int:
        """Run pending asynchronous archive jobs; returns how many completed."""

        if self.replica is not None:
            # A witness repository is redo-only: its archive_queue rows are
            # replicas of the primary's, and the primary runs those jobs.
            # Acting on them here would archive the (possibly stale) mirror
            # and write local transactions into heaps that must keep
            # mirroring the primary's row ids.
            return 0
        completed = 0
        for job in self.repository.pending_archive_jobs():
            path = job["path"]
            if not self.files.exists(path):
                self.repository.complete_archive_job(job["job_id"])
                continue
            content = self.files.read(path)
            archive_id = self.archive.store(self.server_name, path, content,
                                            caller_clock=self.clock)
            self.repository.add_version(path, archive_id, job["state_id"])
            self.repository.complete_archive_job(job["job_id"])
            completed += 1
        return completed

    def has_pending_archives(self, path: str | None = None) -> bool:
        return bool(self.repository.pending_archive_jobs(path))

    def run_housekeeping(self, keep_versions: int | None = None) -> dict:
        """Periodic DLFM maintenance.

        * purge token-registry entries whose expiry has passed (the paper's
          token entries are valid "till time t");
        * optionally prune each file's committed-version chain to its newest
          *keep_versions* entries so the archive metadata stays bounded; the
          newest version is always retained because rollback needs it.
        """

        if self.replica is not None:
            # Redo-only witness: repository maintenance runs on the serving
            # node and replicates over (see process_archive_jobs); only the
            # node-local follower-read soft state is purged here.
            purged = self.replica_soft.purge_expired_tokens(self._now()) \
                if self.replica_soft is not None else 0
            return {"purged_tokens": purged, "pruned_versions": 0}
        purged_tokens = self.repository.purge_expired_tokens(self._now())
        pruned_versions = 0
        if keep_versions is not None and keep_versions >= 1:
            for row in self.repository.linked_files():
                versions = self.repository.versions(row["path"])
                for stale in versions[:-keep_versions]:
                    self.repository.db.delete(
                        "file_versions", {"version_id": stale["version_id"]})
                    pruned_versions += 1
        return {"purged_tokens": purged_tokens, "pruned_versions": pruned_versions}

    # ------------------------------------------------------------- replica mode --
    def enable_replica_mode(self, failpoints: dict | None = None):
        """Turn this DLFM into a witness replica consuming a shipped WAL stream.

        Returns the :class:`~repro.datalinks.replication.ReplicaApplier`
        that :meth:`replica_apply` feeds; the applier rebinds
        ``linked_files`` inode numbers to this node's file system as rows
        arrive.  Follower-read soft state (token-registry and Sync entries)
        goes to an ephemeral side store while replica mode is on, keeping
        the repository heaps redo-only.
        """

        from repro.datalinks.replication import ReplicaApplier, WitnessSoftState

        self.replica = ReplicaApplier(self.repository.db, files=self.files,
                                       failpoints=failpoints)
        self.replica_soft = WitnessSoftState()
        return self.replica

    def disable_replica_mode(self) -> dict:
        """Promote this witness DLFM to a full primary.

        Leaves redo-only mode: archive jobs and housekeeping run locally
        again, link/unlink branches and 2PC votes are accepted (fencing
        permitting), and the follower-read soft state accrued while serving
        as a witness is migrated into the repository -- whose writes now go
        through this node's own WAL and therefore ship to any subscriber.
        """

        soft = self.replica_soft
        self.replica = None
        self.replica_soft = None
        migrated = {"token_entries": 0, "sync_entries": 0}
        if soft is not None:
            for entry in soft.token_entries:
                self.repository.add_token_entry(entry["path"], entry["userid"],
                                                entry["token_type"],
                                                entry["expires_at"])
                migrated["token_entries"] += 1
            for entry in soft.sync_entries:
                self.repository.add_sync_entry(entry["path"], entry["access"],
                                               entry["userid"])
                migrated["sync_entries"] += 1
        return migrated

    def replica_apply(self, records: list) -> dict:
        """Apply one shipped WAL batch (the ``apply_wal`` daemon operation)."""

        if self.replica is None:
            raise ControlModeError(
                f"DLFM {self.server_name!r} is not a witness replica")
        return self.replica.apply(records)

    def replica_status(self) -> dict:
        if self.replica is None:
            return {"replica": False}
        soft = self.replica_soft
        return {"replica": True,
                "soft_token_entries": len(soft.token_entries) if soft else 0,
                "soft_sync_entries": len(soft.sync_entries) if soft else 0,
                **self.replica.status()}

    def replica_catch_up(self, outcomes: dict) -> dict:
        """Promotion-time catch-up on the witness.

        Resolves the shipped in-doubt transactions against the
        coordinator's durable ``outcomes``, then runs
        :meth:`replica_rebind` so this node can actually serve its
        replicated link state.
        """

        resolved = self.replica.resolve_in_doubt(outcomes) \
            if self.replica is not None else {"committed": [], "aborted": []}
        return {"in_doubt": resolved, **self.replica_rebind()}

    def inherited_sync_entry_ids(self) -> list[int]:
        """Ids of the Sync entries replicated from the deposed serving node.

        Sampled just before promotion migrates this node's own
        follower-read soft state into the repository, so the two
        populations stay distinguishable: inherited entries belong to
        opens against the *old* serving node and must be rolled back,
        while migrated soft entries are this node's own live reads.
        """

        return [row["entry_id"]
                for row in self.repository.db.select("sync_entries", lock=False)]

    def rollback_inherited_updates(self, sync_entry_ids: list[int]) -> list[str]:
        """Roll back file updates the deposed serving node had open.

        Their Sync "write" entries and update-tracking rows replicated
        over the WAL stream, but the in-flight bytes never did (writes
        land on the serving node's file system; this node's mirror was
        taken at ingest), so the local copy already *is* the last
        committed version.  Clearing the inherited rows mirrors what
        crash recovery does on a restarted primary -- without it, every
        future update of those files would be refused as "already being
        updated" by a writer that can no longer reach this node.

        Must run *after* this node is a full primary and its surviving
        subscribers are re-sourced from its stream: the deletes then ship
        like any other repository write, keeping every witness heap
        positionally identical.
        """

        rolled_back = []
        for tracking in self.repository.all_tracking():
            path = tracking["path"]
            self.repository.remove_tracking(path)
            row = self.repository.linked_file(path)
            if row is not None and row["taken_over"] and \
                    ControlMode.from_string(row["control_mode"]) is ControlMode.RFD:
                self._release_takeover(row)
            rolled_back.append(path)
        doomed = set(sync_entry_ids)
        if doomed:
            self.repository.db.delete(
                "sync_entries", lambda row: row["entry_id"] in doomed)
        return rolled_back

    def replica_rebind(self) -> dict:
        """Bind the replicated link state to this node's own resources.

        Walks the linked files to make this node able to serve them:
        missing file content is restored from the shared archive, inode
        numbers are rebound to the local file system, and full-control /
        read-only link constraints are re-applied to the local copies (the
        link ran on another node, so its ownership changes never touched
        this node's files).  Used by promotion and by the reversed-ship
        rejoin, which has no in-doubt work to resolve.
        """

        restored, rebound, constrained = [], 0, 0
        stale = self.replica.stale_paths if self.replica is not None \
            else set()
        for row in self.repository.linked_files():
            path = row["path"]
            if self.files.exists(path) and path in stale:
                # The mirrored bytes predate an update-in-place committed
                # on the old serving node; refresh from the shared archive
                # (best effort -- an update committed but never archived
                # only ever lived on the crashed node).
                if self.restore_last_committed(path):
                    restored.append(path)
                stale.discard(path)
            if not self.files.exists(path):
                if not self.restore_last_committed(path, create_missing=True):
                    # No local content and nothing archived: park the row
                    # under a collision-free placeholder inode (unique per
                    # row, never a real inode) until the content shows up.
                    placeholder = -row["_rid"]
                    if row["ino"] != placeholder:
                        self.repository.update_linked_file(
                            path, {"ino": placeholder})
                    continue
                restored.append(path)
            attrs = self.files.stat(path)
            if attrs.ino != row["ino"]:
                self.repository.update_linked_file(path, {"ino": attrs.ino})
                rebound += 1
            mode = ControlMode.from_string(row["control_mode"])
            if mode.takes_over_on_link and attrs.uid != self.dbms_uid:
                self.files.take_over(path, mode=0o400)
                constrained += 1
            elif mode.made_read_only_on_link and attrs.mode & _WRITE_BITS:
                self.files.chmod(path, attrs.mode & ~_WRITE_BITS)
                constrained += 1
        return {"restored_files": restored,
                "rebound_inos": rebound, "constrained_files": constrained}

    # --------------------------------------------------------------- crash/recover --
    def crash(self) -> None:
        """Simulate a DLFM / file-server crash: volatile state is lost."""

        self.repository.db.crash()
        self.branches.clear()
        self._moving_exports.clear()
        if self.replica_soft is not None:
            # Follower-read soft state is volatile, like the branch table.
            self.replica_soft.clear()
        self.running = False

    def recover(self) -> dict:
        """Restart after a crash: repository recovery plus file-update rollback.

        In-doubt branches (durable PREPARE, no durable outcome) are resolved
        from the coordinator: the durable PREPARE record carries the host
        transaction id, and the host database's log says whether that
        transaction committed.  Without a reachable coordinator the branch is
        presumed aborted.
        """

        summary = self.repository.db.recover()
        resolved = self._resolve_recovered_in_doubt()
        summary["in_doubt_committed"] = resolved["committed"]
        summary["in_doubt_aborted"] = resolved["aborted"]
        rolled_back = []
        for tracking in self.repository.all_tracking():
            path = tracking["path"]
            self.restore_last_committed(path, park_in_flight=True)
            self.repository.remove_tracking(path)
            row = self.repository.linked_file(path)
            if row is not None and ControlMode.from_string(row["control_mode"]) is ControlMode.RFD:
                self._release_takeover(row)
            rolled_back.append(path)
        self.repository.clear_sync_entries()
        self.running = True
        return {"repository": summary, "rolled_back_updates": rolled_back}

    # ------------------------------------------------- in-doubt branch resolution --
    def _host_txn_id_of(self, local_txn_id: int) -> int | None:
        """Map a repository transaction back to its host transaction id.

        Reads the durable PREPARE record the branch wrote when it voted.
        """

        from repro.storage.wal import LogRecordType

        for record in self.repository.db.wal.records_of(local_txn_id,
                                                        durable_only=True):
            if record.type is LogRecordType.PREPARE:
                host_txn_id = record.extra.get("host_txn_id")
                if host_txn_id is not None:
                    return int(host_txn_id)
        return None

    def _host_outcome(self, host_txn_id: int | None) -> str:
        if host_txn_id is None or self._engine is None:
            return "unknown"
        return self._engine.host_transaction_outcome(host_txn_id)

    def _resolve_recovered_in_doubt(self) -> dict:
        """Commit or abort the in-doubt transactions reinstated by recovery."""

        committed, aborted = [], []
        for txn in list(self.repository.db.in_doubt_transactions()):
            host_txn_id = self._host_txn_id_of(txn.txn_id)
            if self._host_outcome(host_txn_id) == "committed":
                self.repository.db.commit_prepared(txn)
                committed.append(host_txn_id)
            else:
                # Presumed abort: no durable COMMIT at the coordinator.
                self.repository.db.abort_prepared(txn)
                aborted.append(host_txn_id if host_txn_id is not None else txn.txn_id)
        return {"committed": committed, "aborted": aborted}

    def resolve_in_doubt(self) -> dict:
        """Resolve live branches after a *coordinator* failure.

        When the host database (the 2PC coordinator) crashes mid-protocol,
        this file server is left with branches and no instruction.  Once the
        host has recovered, prepared branches are driven to the
        coordinator's durable outcome; branches that never voted cannot have
        committed anywhere (prepare precedes the host commit) and are
        presumed aborted.
        """

        committed, aborted = [], []
        prepared = set(self.branches.prepared_host_transactions())
        for host_txn_id in list(self.branches.active_host_transactions()):
            if host_txn_id in prepared and \
                    self._host_outcome(host_txn_id) == "committed":
                self.branches.commit(host_txn_id)
                committed.append(host_txn_id)
            else:
                self.branches.abort(host_txn_id)
                aborted.append(host_txn_id)
        return {"committed": committed, "aborted": aborted}

    # -------------------------------------------------------------------- backup --
    def backup(self, label: str = "") -> BackupImage:
        """Back up the DLFM repository (archives already hold file versions)."""

        self.process_archive_jobs()
        return self.repository.db.backup(label)

    def restore(self, image: BackupImage, host_state_id: int) -> list[str]:
        """Restore repository and files to the given host database state."""

        self.repository.db.restore(image)
        restored = []
        for row in self.repository.linked_files():
            path = row["path"]
            if self.restore_last_committed(path, max_state_id=host_state_id):
                restored.append(path)
        self.repository.clear_sync_entries()
        for tracking in self.repository.all_tracking():
            self.repository.remove_tracking(tracking["path"])
        return restored

    # -------------------------------------------------------------------- helpers --
    def generate_token(self, path: str, token_type: TokenType, ttl: float | None = None) -> str:
        """Generate a token locally (normally the engine's token manager does this)."""

        return self.tokens.generate(path, token_type, ttl)
