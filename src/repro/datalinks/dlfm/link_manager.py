"""Link and unlink processing.

"When a file is linked to the database, DLFM applies the constraints for
referential integrity, access control, and backup and recovery as specified
in the DATALINK column definition ... All these changes to the DLFM
repository and file system are applied as part of the same DBMS transaction
as the initiating SQL statement.  Later, if the SQL transaction is rolled
back, the changes made by the DLFM are undone as well." (Section 2.2)

Repository changes are undone automatically because they run inside the
branch's local transaction; file-system changes (ownership take-over,
read-only marking) are compensated through the transaction's ``on_abort``
callbacks, and deferred effects (deleting or restoring an unlinked file,
archiving the initial version) run from ``on_commit`` callbacks.
"""

from __future__ import annotations

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, OnUnlink
from repro.datalinks.dlfm.files import FileServerFiles
from repro.datalinks.dlfm.repository import DLFMRepository
from repro.errors import (
    FileAlreadyLinkedError,
    FileNotLinkedError,
    LinkConflictError,
    ReferentialIntegrityError,
)
from repro.storage.transaction import Transaction

#: Write-permission bits cleared when a file is marked read-only.
_WRITE_BITS = 0o222


def apply_link_constraints(files: FileServerFiles, txn: Transaction,
                           path: str, attrs, mode: ControlMode, *,
                           restore_to: tuple | None = None,
                           only_if_needed: bool = False) -> None:
    """Apply link-time access constraints to *path*, with abort compensation.

    The one protocol both a fresh link and a prefix-rebalance import
    follow: full-control modes take the file over (DBMS ownership,
    read-only), rfb/rfd strip the write bits; either way the transaction's
    ``on_abort`` restores *restore_to* -- the file's current attributes by
    default (the fresh-link case), or the pre-link originals recorded in
    the repository row (the import case, whose copy was created with
    them).  ``only_if_needed`` skips constraints already in effect, so
    re-constraining an imported copy is idempotent.
    """

    if restore_to is None:
        restore_to = (attrs.uid, attrs.gid, attrs.mode)
    if mode.takes_over_on_link:
        # Full-control modes: the DBMS takes over the file by changing its
        # ownership and marking it read-only (Section 2.2, rdb; extended
        # to rdd by the paper).
        if only_if_needed and attrs.uid == files.dbms_uid \
                and not attrs.mode & _WRITE_BITS:
            return
        files.take_over(path, mode=0o400)
        txn.on_abort.append(lambda: files.restore_ownership(path, *restore_to))
    elif mode.made_read_only_on_link:
        # rfb / rfd: ownership is unchanged but write permission is
        # disabled, "effectively making it read-only".
        if only_if_needed and not attrs.mode & _WRITE_BITS:
            return
        files.chmod(path, attrs.mode & ~_WRITE_BITS)
        txn.on_abort.append(lambda: files.chmod(path, attrs.mode))


class LinkManager:
    """Implements the link/unlink operations of one DLFM."""

    def __init__(self, repository: DLFMRepository, files: FileServerFiles,
                 state_id_provider=None):
        self._repository = repository
        self._files = files
        # Returns the host database state identifier; set by the manager once
        # the DataLinks engine registers this file server.
        self._state_id_provider = state_id_provider or (lambda: 0)

    def set_state_id_provider(self, provider) -> None:
        self._state_id_provider = provider

    # ---------------------------------------------------------------------- link --
    def link_file(self, txn: Transaction, path: str, options: DatalinkOptions) -> dict:
        """Put *path* under database control within the branch transaction *txn*."""

        if not self._files.exists(path):
            raise ReferentialIntegrityError(
                f"cannot link {path!r}: the file does not exist")
        if self._repository.linked_file(path) is not None:
            raise FileAlreadyLinkedError(f"{path!r} is already linked")

        attrs = self._files.stat(path)
        mode = options.control_mode
        row = {
            "path": path,
            "ino": attrs.ino,
            "control_mode": mode.value,
            "recovery": options.recovery,
            "on_unlink": options.on_unlink.value,
            "taken_over": mode.takes_over_on_link,
            "strict_read_sync": options.strict_read_sync,
            "original_uid": attrs.uid,
            "original_gid": attrs.gid,
            "original_mode": attrs.mode,
            "linked_at": self._repository.db.now(),
            "last_size": attrs.size,
            "last_mtime": attrs.mtime,
        }
        self._repository.insert_linked_file(row, txn)
        self._apply_link_constraints(txn, path, attrs, mode)
        if options.recovery:
            state_provider = self._state_id_provider
            repository = self._repository
            txn.on_commit.append(
                lambda: repository.enqueue_archive_job(path, int(state_provider())))
        return row

    def _apply_link_constraints(self, txn: Transaction, path: str, attrs,
                                mode: ControlMode) -> None:
        apply_link_constraints(self._files, txn, path, attrs, mode)

    # --------------------------------------------------------------------- unlink --
    def unlink_file(self, txn: Transaction, path: str) -> dict:
        """Remove *path* from database control within the branch transaction."""

        row = self._repository.linked_file(path)
        if row is None:
            raise FileNotLinkedError(f"{path!r} is not linked")
        open_entries = self._repository.sync_entries(path)
        if open_entries:
            raise LinkConflictError(
                f"cannot unlink {path!r}: {len(open_entries)} application(s) "
                f"currently have it open")
        self._repository.delete_linked_file(path, txn)

        files = self._files
        mode = ControlMode.from_string(row["control_mode"])
        on_unlink = OnUnlink(row["on_unlink"])
        original = (row["original_uid"], row["original_gid"], row["original_mode"])

        def _finalize() -> None:
            if on_unlink is OnUnlink.DELETE:
                files.unlink(path)
                return
            if mode.takes_over_on_link or mode.made_read_only_on_link:
                files.restore_ownership(path, *original)

        txn.on_commit.append(_finalize)
        return row
