"""The archive server and asynchronous archive jobs.

"A copy of the file is saved to an archive device/server after update to a
file has completed and committed ... Any new update request to the file is
blocked until the archiving completes" (Sections 4.2 and 4.4).  The archive
server is shared by all file servers of a system (an ADSM-style store); each
archived object is immutable and addressed by an integer archive id.

The archive mover is its own simulated node: it runs on the ``archive``
clock domain, and each store/retrieve rendezvouses with the calling file
server's domain (the transfer occupies both ends), so archive bandwidth is
attributed to the archive device rather than smeared over the file servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simclock import SimClock, rendezvous


@dataclass
class ArchiveObject:
    """One immutable archived file version."""

    archive_id: int
    server: str
    path: str
    content: bytes
    created_at: float


@dataclass
class ArchiveServer:
    """Stores archived file versions and accounts for archive bandwidth."""

    clock: SimClock | None = None
    _objects: dict[int, ArchiveObject] = field(default_factory=dict)
    _next_id: int = 1

    def store(self, server: str, path: str, content: bytes,
              caller_clock: SimClock | None = None) -> int:
        """Archive *content*; returns the archive id.

        ``caller_clock`` is the storing node's clock domain: the transfer is
        synchronous, so both domains rendezvous around it.
        """

        if self.clock is not None:
            rendezvous(self.clock, caller_clock)
            self.clock.charge("archive_job_overhead")
            self.clock.charge("archive_per_byte", nbytes=len(content))
            rendezvous(self.clock, caller_clock)
        obj = ArchiveObject(
            archive_id=self._next_id,
            server=server,
            path=path,
            content=bytes(content),
            created_at=self.clock.now() if self.clock is not None else 0.0,
        )
        self._objects[obj.archive_id] = obj
        self._next_id += 1
        return obj.archive_id

    def retrieve(self, archive_id: int,
                 caller_clock: SimClock | None = None) -> bytes:
        """Fetch the archived content for *archive_id*."""

        obj = self._objects[archive_id]
        if self.clock is not None:
            rendezvous(self.clock, caller_clock)
            self.clock.charge("archive_per_byte", nbytes=len(obj.content))
            rendezvous(self.clock, caller_clock)
        return obj.content

    def exists(self, archive_id: int) -> bool:
        return archive_id in self._objects

    def objects_for(self, server: str, path: str | None = None) -> list[ArchiveObject]:
        return [obj for obj in self._objects.values()
                if obj.server == server and (path is None or obj.path == path)]

    def __len__(self) -> int:
        return len(self._objects)
