"""The DLFM daemon processes: main daemon, child agents and the upcall daemon.

"DLFM is implemented as a main daemon with several child daemons and child
agent processes coordinating with each other ... When a connect request from
a database agent is received, the main daemon spawns a child agent which then
establishes a connection with the requesting database agent.  All subsequent
requests (link/unlink operations) from the same connection are served by this
child agent.  The upcall daemon, on the other hand, services requests from
DLFS to check the control mode and verify access permissions of linked
files." (Section 2.2)

Each daemon is a request demultiplexer over the shared
:class:`~repro.datalinks.dlfm.manager.DataLinksFileManager` logic; crossing a
daemon boundary costs simulated IPC latency through a channel.
"""

from __future__ import annotations

from repro.datalinks.datalink_type import DatalinkOptions
from repro.ipc.channel import Channel
from repro.ipc.daemon import Daemon


class UpcallDaemon(Daemon):
    """Services upcalls from DLFS."""

    def __init__(self, manager, clock=None):
        super().__init__(name=f"dlfm-upcall-{manager.server_name}", clock=clock)
        self._manager = manager
        self.epoch_gate = manager.check_placement_epoch
        self.register("validate_token", self._validate_token)
        self.register("check_open", self._check_open)
        self.register("write_open_fallback", self._write_open_fallback)
        self.register("file_closed", self._file_closed)
        self.register("is_linked", self._is_linked)

    def _validate_token(self, ino: int, token: str, userid: int) -> dict:
        return self._manager.upcall_validate_token(ino, token, userid)

    def _check_open(self, ino: int, wants_write: bool, userid: int) -> dict:
        return self._manager.upcall_check_open(ino, wants_write, userid)

    def _write_open_fallback(self, ino: int, userid: int) -> dict:
        return self._manager.upcall_write_open_fallback(ino, userid)

    def _file_closed(self, ino: int, was_write: bool, userid: int) -> dict:
        return self._manager.upcall_file_closed(ino, was_write, userid)

    def _is_linked(self, ino: int) -> dict:
        return self._manager.upcall_is_linked(ino)


class ChildAgent(Daemon):
    """Serves link/unlink and transaction-control requests for one connection."""

    def __init__(self, manager, connection_id: int, clock=None):
        super().__init__(name=f"dlfm-agent-{manager.server_name}-{connection_id}",
                         clock=clock)
        self._manager = manager
        self.epoch_gate = manager.check_placement_epoch
        self.register("link_file", self._link_file)
        self.register("unlink_file", self._unlink_file)
        self.register("link_batch", self._link_batch)
        self.register("unlink_batch", self._unlink_batch)
        self.register("rebalance_export", self._rebalance_export)
        self.register("rebalance_import", self._rebalance_import)
        self.register("begin_branch", self._begin_branch)
        self.register("prepare", self._prepare)
        self.register("commit", self._commit)
        self.register("abort", self._abort)
        self.register("prepare_many", self._prepare_many)
        self.register("commit_many", self._commit_many)
        self.register("abort_many", self._abort_many)

    def _charge_per_item(self, count: int) -> None:
        # A batch crosses the process boundary once but is still demultiplexed
        # item by item inside the agent.
        if self.clock is not None and count > 1:
            self.clock.charge("daemon_dispatch", times=count - 1)

    def _link_file(self, host_txn_id: int, path: str, options: dict) -> dict:
        parsed = DatalinkOptions.from_dict(options)
        row = self._manager.link_file(host_txn_id, path, parsed)
        return {"path": row["path"], "ino": row["ino"]}

    def _unlink_file(self, host_txn_id: int, path: str) -> dict:
        row = self._manager.unlink_file(host_txn_id, path)
        return {"path": row["path"]}

    def _link_batch(self, host_txn_id: int, items: list) -> dict:
        """Link several files in one IPC round trip (pipelined multi-row DML).

        Items are processed in order; the first failure aborts the batch by
        raising through the reply, leaving the branch's uncommitted changes to
        be rolled back by the coordinator's abort.
        """

        self._charge_per_item(len(items))
        results = []
        for item in items:
            parsed = DatalinkOptions.from_dict(item["options"])
            row = self._manager.link_file(host_txn_id, item["path"], parsed)
            results.append({"path": row["path"], "ino": row["ino"]})
        return {"results": results}

    def _unlink_batch(self, host_txn_id: int, paths: list) -> dict:
        """Unlink several files in one IPC round trip."""

        self._charge_per_item(len(paths))
        results = [{"path": self._manager.unlink_file(host_txn_id, path)["path"]}
                   for path in paths]
        return {"results": results}

    def _rebalance_export(self, host_txn_id: int, prefix: str) -> dict:
        """Source side of a prefix hand-off: delete and return the state."""

        return self._manager.rebalance_export(host_txn_id, prefix)

    def _rebalance_import(self, host_txn_id: int, rows: list,
                          versions: list) -> dict:
        """Destination side: adopt the handed-off rows and version chain."""

        self._charge_per_item(len(rows))
        return self._manager.rebalance_import(host_txn_id, rows, versions)

    def _begin_branch(self, host_txn_id: int) -> dict:
        self._manager.begin_branch(host_txn_id)
        return {}

    def _prepare(self, host_txn_id: int) -> dict:
        prepared = self._manager.prepare_branch(host_txn_id)
        return {"prepared": prepared}

    def _commit(self, host_txn_id: int) -> dict:
        self._manager.commit_branch(host_txn_id)
        return {}

    def _abort(self, host_txn_id: int) -> dict:
        self._manager.abort_branch(host_txn_id)
        return {}

    def _prepare_many(self, host_txn_ids: list) -> dict:
        """Vote on a batch of branches in one round trip (group commit)."""

        self._charge_per_item(len(host_txn_ids))
        return {"prepared": [self._manager.prepare_branch(txn_id)
                             for txn_id in host_txn_ids]}

    def _commit_many(self, host_txn_ids: list) -> dict:
        self._charge_per_item(len(host_txn_ids))
        for txn_id in host_txn_ids:
            self._manager.commit_branch(txn_id)
        return {}

    def _abort_many(self, host_txn_ids: list) -> dict:
        self._charge_per_item(len(host_txn_ids))
        for txn_id in host_txn_ids:
            self._manager.abort_branch(txn_id)
        return {}


class ReplicaDaemon(Daemon):
    """Receives the primary's shipped repository WAL stream on the witness.

    The witness's replication endpoint: the primary's
    :class:`~repro.datalinks.replication.WalShipper` sends ``apply_wal``
    batches through a channel to this daemon, which hands them to the
    witness DLFM's replica applier.  Because it is a daemon, a crashed
    witness refuses shipments (the shipper accumulates lag) exactly the way
    a crashed DLFM refuses link traffic.
    """

    def __init__(self, manager, clock=None):
        super().__init__(name=f"dlfm-replica-{manager.server_name}", clock=clock)
        self._manager = manager
        self.epoch_gate = manager.check_placement_epoch
        self.register("apply_wal", self._apply_wal)
        self.register("replica_status", self._replica_status)

    def _apply_wal(self, records: list) -> dict:
        return self._manager.replica_apply(records)

    def _replica_status(self) -> dict:
        return self._manager.replica_status()


class MainDaemon(Daemon):
    """Accepts connections from database agents and spawns child agents."""

    def __init__(self, manager, clock=None):
        super().__init__(name=f"dlfm-main-{manager.server_name}", clock=clock)
        self._manager = manager
        self.epoch_gate = manager.check_placement_epoch
        self._next_connection = 1
        self.child_agents: list[ChildAgent] = []
        self.register("connect", self._connect)

    def _connect(self, client_name: str = "") -> dict:
        agent = ChildAgent(self._manager, self._next_connection, clock=self.clock)
        self._next_connection += 1
        self.child_agents.append(agent)
        return {"agent": agent}

    def stop_all(self) -> None:
        self.stop()
        for agent in self.child_agents:
            agent.stop()

    def start_all(self) -> None:
        self.start()
        for agent in self.child_agents:
            agent.start()


class DLFMConnection:
    """A typed wrapper over the channel between a database agent and its child agent.

    The DataLinks engine holds one connection per file server and issues all
    link/unlink and two-phase-commit traffic through it.  In simulated time
    the two traffic classes differ: link/unlink work is **pipelined**
    (:meth:`~repro.ipc.channel.Channel.post` -- the DLFM does the work on
    its own clock domain while the host keeps executing SQL; completion is
    acknowledged by the prepare vote), whereas the two-phase-commit calls
    are **barriers** (:meth:`~repro.ipc.channel.Channel.request` -- the
    coordinator waits, and fan-outs across shards overlap through the
    engine's scatter-gather window).
    """

    def __init__(self, main_daemon: MainDaemon, clock=None,
                 client_name: str = "engine", epoch_provider=None):
        connect_channel = Channel(main_daemon, clock,
                                  latency_primitive="db_dlfm_message",
                                  sender=client_name,
                                  epoch_provider=epoch_provider)
        agent = connect_channel.request("connect", client_name=client_name)["agent"]
        self.agent = agent
        self._channel = Channel(agent, clock, latency_primitive="db_dlfm_message",
                                sender=client_name,
                                epoch_provider=epoch_provider)

    def link_file(self, host_txn_id: int, path: str, options: DatalinkOptions) -> dict:
        return self._channel.post("link_file", host_txn_id=host_txn_id,
                                  path=path, options=options.to_dict())

    def unlink_file(self, host_txn_id: int, path: str) -> dict:
        return self._channel.post("unlink_file", host_txn_id=host_txn_id, path=path)

    # Batched pipelines: a multi-row statement ships one message per file
    # server instead of one round trip per row.
    def link_files(self, host_txn_id: int,
                   items: list[tuple[str, DatalinkOptions]]) -> list[dict]:
        if len(items) == 1:
            path, options = items[0]
            return [self.link_file(host_txn_id, path, options)]
        payload = [{"path": path, "options": options.to_dict()}
                   for path, options in items]
        return self._channel.post("link_batch", host_txn_id=host_txn_id,
                                  items=payload)["results"]

    def unlink_files(self, host_txn_id: int, paths: list[str]) -> list[dict]:
        if len(paths) == 1:
            return [self.unlink_file(host_txn_id, paths[0])]
        return self._channel.post("unlink_batch", host_txn_id=host_txn_id,
                                  paths=list(paths))["results"]

    # Prefix hand-off: both sides are coordinator-driven barriers (the
    # rebalance waits for each step before moving to the next).
    def rebalance_export(self, host_txn_id: int, prefix: str) -> dict:
        return self._channel.request("rebalance_export",
                                     host_txn_id=host_txn_id, prefix=prefix)

    def rebalance_import(self, host_txn_id: int, rows: list,
                         versions: list) -> dict:
        return self._channel.request("rebalance_import",
                                     host_txn_id=host_txn_id,
                                     rows=rows, versions=versions)

    def begin_branch(self, host_txn_id: int) -> None:
        self._channel.post("begin_branch", host_txn_id=host_txn_id)

    def prepare(self, host_txn_id: int) -> bool:
        return self._channel.request("prepare", host_txn_id=host_txn_id)["prepared"]

    def commit(self, host_txn_id: int) -> None:
        self._channel.request("commit", host_txn_id=host_txn_id)

    def abort(self, host_txn_id: int) -> None:
        self._channel.request("abort", host_txn_id=host_txn_id)

    # Batched two-phase commit: the group-commit queue resolves a whole batch
    # of host transactions with one prepare and one commit message per server.
    def prepare_many(self, host_txn_ids: list[int]) -> list[bool]:
        return self._channel.request("prepare_many",
                                     host_txn_ids=list(host_txn_ids))["prepared"]

    def commit_many(self, host_txn_ids: list[int]) -> None:
        self._channel.request("commit_many", host_txn_ids=list(host_txn_ids))

    def abort_many(self, host_txn_ids: list[int]) -> None:
        self._channel.request("abort_many", host_txn_ids=list(host_txn_ids))
