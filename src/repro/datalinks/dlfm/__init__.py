"""DataLinks File Manager (DLFM): the transactional resource manager on each file server."""

from repro.datalinks.dlfm.manager import DataLinksFileManager
from repro.datalinks.dlfm.archive import ArchiveServer

__all__ = ["DataLinksFileManager", "ArchiveServer"]
