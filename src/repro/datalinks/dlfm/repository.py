"""The DLFM repository: its private tables and typed accessors.

"The DLFM maintains its own repository about the transaction state and about
files that are linked to the database" (Section 2.2).  The repository is a
:class:`repro.storage.Database` of its own, so it gets WAL, locking, crash
recovery and backup for free and can act as a prepared (in-doubt) participant
in the host database's two-phase commit.

Tables
------
``linked_files``    one row per linked file (control mode, take-over state,
                    original ownership, last known size/mtime).
``sync_entries``    the Sync table of Section 4.5: one row per open of a
                    managed file, used to reject conflicting opens and
                    unlink operations.
``token_entries``   token registry of Section 4.1: one row per validated
                    token, keyed by user id (not process id).
``update_tracking`` files with an update in progress (Section 4.4) and the
                    pre-update attributes needed to detect modification.
``file_versions``   committed versions with their archive object and the
                    database state identifier they belong to.
``archive_queue``   pending asynchronous archive jobs; a pending job blocks
                    further updates of the same file.
"""

from __future__ import annotations

from repro.storage import database as database_module
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.transaction import Transaction
from repro.storage.values import DataType


def _table(name: str, columns: list[Column], pk: tuple[str, ...]) -> TableSchema:
    return TableSchema(name, columns, primary_key=pk)


class DLFMRepository:
    """Typed accessors over the DLFM's private database."""

    def __init__(self, database: Database):
        self.db = database
        self._create_tables()

    # ------------------------------------------------------------------ schema --
    def _create_tables(self) -> None:
        db = self.db
        db.create_table(_table("linked_files", [
            Column("path", DataType.TEXT, nullable=False),
            Column("ino", DataType.INTEGER, nullable=False),
            Column("control_mode", DataType.TEXT, nullable=False),
            Column("recovery", DataType.BOOLEAN, nullable=False, default=True),
            Column("on_unlink", DataType.TEXT, nullable=False, default="RESTORE"),
            Column("taken_over", DataType.BOOLEAN, nullable=False, default=False),
            Column("strict_read_sync", DataType.BOOLEAN, nullable=False, default=False),
            Column("original_uid", DataType.INTEGER, nullable=False),
            Column("original_gid", DataType.INTEGER, nullable=False),
            Column("original_mode", DataType.INTEGER, nullable=False),
            Column("linked_at", DataType.TIMESTAMP, nullable=False, default=0.0),
            Column("last_size", DataType.INTEGER, nullable=False, default=0),
            Column("last_mtime", DataType.TIMESTAMP, nullable=False, default=0.0),
        ], ("path",)))
        db.create_index("linked_files_ino", "linked_files", ("ino",), unique=True)

        db.create_table(_table("sync_entries", [
            Column("entry_id", DataType.INTEGER, nullable=False),
            Column("path", DataType.TEXT, nullable=False),
            Column("access", DataType.TEXT, nullable=False),          # "read" | "write"
            Column("userid", DataType.INTEGER, nullable=False),
            Column("opened_at", DataType.TIMESTAMP, nullable=False, default=0.0),
        ], ("entry_id",)))
        db.create_index("sync_entries_path", "sync_entries", ("path",))

        db.create_table(_table("token_entries", [
            Column("entry_id", DataType.INTEGER, nullable=False),
            Column("path", DataType.TEXT, nullable=False),
            Column("userid", DataType.INTEGER, nullable=False),
            Column("token_type", DataType.TEXT, nullable=False),      # "R" | "W"
            Column("expires_at", DataType.TIMESTAMP, nullable=False),
        ], ("entry_id",)))
        db.create_index("token_entries_path", "token_entries", ("path",))

        db.create_table(_table("update_tracking", [
            Column("path", DataType.TEXT, nullable=False),
            Column("userid", DataType.INTEGER, nullable=False),
            Column("started_at", DataType.TIMESTAMP, nullable=False, default=0.0),
            Column("pre_mtime", DataType.TIMESTAMP, nullable=False, default=0.0),
            Column("pre_size", DataType.INTEGER, nullable=False, default=0),
            Column("restore_version", DataType.INTEGER, nullable=True),
        ], ("path",)))

        db.create_table(_table("file_versions", [
            Column("version_id", DataType.INTEGER, nullable=False),
            Column("path", DataType.TEXT, nullable=False),
            Column("version_no", DataType.INTEGER, nullable=False),
            Column("archive_id", DataType.INTEGER, nullable=False),
            Column("state_id", DataType.INTEGER, nullable=False, default=0),
            Column("created_at", DataType.TIMESTAMP, nullable=False, default=0.0),
        ], ("version_id",)))
        db.create_index("file_versions_path", "file_versions", ("path",))

        db.create_table(_table("archive_queue", [
            Column("job_id", DataType.INTEGER, nullable=False),
            Column("path", DataType.TEXT, nullable=False),
            Column("state", DataType.TEXT, nullable=False, default="PENDING"),
            Column("state_id", DataType.INTEGER, nullable=False, default=0),
            Column("created_at", DataType.TIMESTAMP, nullable=False, default=0.0),
        ], ("job_id",)))
        db.create_index("archive_queue_path", "archive_queue", ("path",))

    # ------------------------------------------------------- WAL-shipping hooks --
    # A shard primary replicates by streaming this repository's durable WAL
    # suffix to its witness; these helpers are the repository-level surface
    # the shipper uses (see :mod:`repro.datalinks.replication`).
    def add_wal_listener(self, listener) -> None:
        """Call *listener* with the WAL whenever the durable prefix grows."""

        self.db.wal.add_flush_listener(listener)

    def remove_wal_listener(self, listener) -> None:
        self.db.wal.remove_flush_listener(listener)

    def durable_lsn(self):
        """LSN of the last durable repository record (the shipping frontier)."""

        return self.db.wal.flushed_lsn

    def wal_records_since(self, lsn) -> list:
        """Durable WAL records with LSN strictly greater than *lsn*."""

        return self.db.wal.records_from(lsn, durable_only=True)

    def wal_records_pending(self, lsn) -> list:
        """*All* records past *lsn*, durable or still buffered.

        The follower-read staleness bound counts these, not just the
        durable suffix: under group commit a transaction can be committed
        and visible on the serving node while its records sit in the WAL
        buffer, and a witness missing them is behind no matter what the
        durable frontier says.
        """

        return self.db.wal.records_from(lsn, durable_only=False)

    # ------------------------------------------------------------------ helpers --
    def _next_id(self, table: str, column: str) -> int:
        if database_module.FAST_SCANS:
            # ``scan_max`` charges exactly what the reference full-table
            # select below charges, but serves the maximum from a tracker
            # keyed to the heap's mutation counter -- this runs on every
            # sync-entry / token-entry registration, over tables that only
            # ever grow, so the reference path is quadratic in run length.
            best = self.db.scan_max(table, column)
            return best + 1 if best is not None and best > 0 else 1
        rows = self.db.select(table, lock=False)
        if not rows:
            return 1
        # Explicit loop: a genexpr under ``max`` costs a resumed frame per
        # row, and this runs on every sync-entry / token-entry registration.
        best = 0
        for row in rows:
            value = row[column]
            if value > best:
                best = value
        return best + 1

    # ------------------------------------------------------------ linked files --
    def insert_linked_file(self, row: dict, txn: Transaction | None = None) -> None:
        self.db.insert("linked_files", row, txn)

    def delete_linked_file(self, path: str, txn: Transaction | None = None) -> int:
        return self.db.delete("linked_files", {"path": path}, txn)

    def linked_file(self, path: str) -> dict | None:
        return self.db.select_one("linked_files", {"path": path}, lock=False)

    def linked_file_by_ino(self, ino: int) -> dict | None:
        return self.db.select_one("linked_files", {"ino": ino}, lock=False)

    def linked_files(self) -> list[dict]:
        return self.db.select("linked_files", lock=False)

    def update_linked_file(self, path: str, changes: dict,
                           txn: Transaction | None = None) -> int:
        return self.db.update("linked_files", {"path": path}, changes, txn)

    # ------------------------------------------------------------- sync entries --
    def add_sync_entry(self, path: str, access: str, userid: int,
                       txn: Transaction | None = None) -> int:
        entry_id = self._next_id("sync_entries", "entry_id")
        self.db.insert("sync_entries", {
            "entry_id": entry_id,
            "path": path,
            "access": access,
            "userid": userid,
            "opened_at": self.db.now(),
        }, txn)
        return entry_id

    def remove_sync_entry(self, path: str, access: str, userid: int,
                          txn: Transaction | None = None) -> int:
        """Remove one matching Sync-table entry (opens and closes pair up)."""

        rows = self.db.select("sync_entries",
                              {"path": path, "access": access, "userid": userid},
                              lock=False)
        if not rows:
            return 0
        entry_id = rows[0]["entry_id"]
        return self.db.delete("sync_entries", {"entry_id": entry_id}, txn)

    def sync_entries(self, path: str) -> list[dict]:
        return self.db.select("sync_entries", {"path": path}, lock=False)

    def clear_sync_entries(self, path: str | None = None) -> int:
        where = {"path": path} if path is not None else None
        return self.db.delete("sync_entries", where)

    # ------------------------------------------------------------ token entries --
    def add_token_entry(self, path: str, userid: int, token_type: str,
                        expires_at: float) -> int:
        entry_id = self._next_id("token_entries", "entry_id")
        self.db.insert("token_entries", {
            "entry_id": entry_id,
            "path": path,
            "userid": userid,
            "token_type": token_type,
            "expires_at": expires_at,
        })
        return entry_id

    def find_token_entry(self, path: str, userid: int, *, for_write: bool,
                         now: float) -> dict | None:
        """Find a live token entry authorizing the requested kind of access."""

        rows = self.db.select("token_entries", {"path": path, "userid": userid},
                              lock=False)
        for row in rows:
            if row["expires_at"] < now:
                continue
            if for_write and row["token_type"] != "W":
                continue
            return row
        return None

    def purge_expired_tokens(self, now: float) -> int:
        return self.db.delete("token_entries", lambda row: row["expires_at"] < now)

    # ---------------------------------------------------------- update tracking --
    def add_tracking(self, row: dict, txn: Transaction | None = None) -> None:
        self.db.insert("update_tracking", row, txn)

    def tracking(self, path: str) -> dict | None:
        return self.db.select_one("update_tracking", {"path": path}, lock=False)

    def all_tracking(self) -> list[dict]:
        return self.db.select("update_tracking", lock=False)

    def remove_tracking(self, path: str, txn: Transaction | None = None) -> int:
        return self.db.delete("update_tracking", {"path": path}, txn)

    # ------------------------------------------------------------ file versions --
    def add_version(self, path: str, archive_id: int, state_id: int,
                    txn: Transaction | None = None) -> dict:
        version_no = self.latest_version_no(path) + 1
        row = {
            "version_id": self._next_id("file_versions", "version_id"),
            "path": path,
            "version_no": version_no,
            "archive_id": archive_id,
            "state_id": state_id,
            "created_at": self.db.now(),
        }
        self.db.insert("file_versions", row, txn)
        return row

    def latest_version_no(self, path: str) -> int:
        versions = self.versions(path)
        best = 0
        for row in versions:
            number = row["version_no"]
            if number > best:
                best = number
        return best

    def versions(self, path: str) -> list[dict]:
        rows = self.db.select("file_versions", {"path": path}, lock=False)
        return sorted(rows, key=lambda row: row["version_no"])

    def latest_version(self, path: str, *, max_state_id: int | None = None) -> dict | None:
        candidates = self.versions(path)
        if max_state_id is not None:
            candidates = [row for row in candidates if row["state_id"] <= max_state_id]
        return candidates[-1] if candidates else None

    def delete_versions(self, path: str, txn: Transaction | None = None) -> int:
        return self.db.delete("file_versions", {"path": path}, txn)

    def import_version_rows(self, rows: list[dict],
                            txn: Transaction | None = None) -> int:
        """Adopt version rows handed off from another DLFM (prefix rebalance).

        Version numbers, archive ids, state ids and creation times are
        preserved -- the archived objects live on the shared archive server
        and move with their metadata -- while ``version_id`` is reassigned
        from this repository's own sequence.
        """

        next_id = self._next_id("file_versions", "version_id")
        for offset, row in enumerate(rows):
            clean = {key: value for key, value in row.items()
                     if not key.startswith("_")}
            clean["version_id"] = next_id + offset
            self.db.insert("file_versions", clean, txn)
        return len(rows)

    # ------------------------------------------------------------ archive queue --
    def enqueue_archive_job(self, path: str, state_id: int,
                            txn: Transaction | None = None) -> int:
        job_id = self._next_id("archive_queue", "job_id")
        self.db.insert("archive_queue", {
            "job_id": job_id,
            "path": path,
            "state": "PENDING",
            "state_id": state_id,
            "created_at": self.db.now(),
        }, txn)
        return job_id

    def pending_archive_jobs(self, path: str | None = None) -> list[dict]:
        where = {"state": "PENDING"}
        if path is not None:
            where["path"] = path
        rows = self.db.select("archive_queue", where, lock=False)
        return sorted(rows, key=lambda row: row["job_id"])

    def complete_archive_job(self, job_id: int) -> int:
        return self.db.update("archive_queue", {"job_id": job_id}, {"state": "DONE"})

    def cancel_archive_jobs(self, path: str) -> int:
        return self.db.delete("archive_queue",
                              lambda row: row["path"] == path and row["state"] == "PENDING")
