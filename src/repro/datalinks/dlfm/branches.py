"""Resource-manager branches: DLFM sub-transactions of host transactions.

"The operations done in DLFM are treated as a sub-transaction of the host
database transaction" (Section 2.2).  A *branch* pairs a host transaction id
with a local transaction in the DLFM repository; the DataLinks engine drives
the branch through prepare/commit/abort as the two-phase-commit coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransactionNotActive
from repro.storage.database import Database
from repro.storage.transaction import Transaction


@dataclass
class Branch:
    """One DLFM sub-transaction."""

    host_txn_id: int
    local_txn: Transaction


class BranchManager:
    """Tracks the branches the DLFM holds for host transactions."""

    def __init__(self, database: Database):
        self._db = database
        self._branches: dict[int, Branch] = {}

    def branch_for(self, host_txn_id: int) -> Branch:
        """Return the branch for *host_txn_id*, starting one when needed."""

        branch = self._branches.get(host_txn_id)
        if branch is None:
            branch = Branch(host_txn_id=host_txn_id, local_txn=self._db.begin())
            self._branches[host_txn_id] = branch
        return branch

    def has_branch(self, host_txn_id: int) -> bool:
        return host_txn_id in self._branches

    def get(self, host_txn_id: int) -> Branch:
        try:
            return self._branches[host_txn_id]
        except KeyError:
            raise TransactionNotActive(
                f"no DLFM branch for host transaction {host_txn_id}") from None

    def prepare(self, host_txn_id: int) -> bool:
        """Vote on the branch; returns ``False`` when there is nothing to prepare.

        The host transaction id is written into the durable PREPARE record so
        an in-doubt branch found after a crash can be mapped back to its host
        transaction and resolved from the coordinator's durable outcome.
        """

        if host_txn_id not in self._branches:
            return False
        branch = self._branches[host_txn_id]
        self._db.prepare(branch.local_txn, extra={"host_txn_id": host_txn_id})
        return True

    def commit(self, host_txn_id: int) -> None:
        if host_txn_id not in self._branches:
            return
        branch = self._branches.pop(host_txn_id)
        if branch.local_txn.state.name == "PREPARED":
            self._db.commit_prepared(branch.local_txn)
        else:
            self._db.commit(branch.local_txn)

    def abort(self, host_txn_id: int) -> None:
        if host_txn_id not in self._branches:
            return
        branch = self._branches.pop(host_txn_id)
        if branch.local_txn.state.name == "PREPARED":
            self._db.abort_prepared(branch.local_txn)
        elif not branch.local_txn.is_finished:
            self._db.abort(branch.local_txn)

    def clear(self) -> None:
        """Forget all in-memory branch state (after a crash)."""

        self._branches.clear()

    def active_host_transactions(self) -> list[int]:
        return sorted(self._branches)

    def prepared_host_transactions(self) -> list[int]:
        """Host transaction ids whose live branch has voted PREPARE."""

        return sorted(host_txn_id for host_txn_id, branch in self._branches.items()
                      if branch.local_txn.state.name == "PREPARED")
