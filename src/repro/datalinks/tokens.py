"""Access tokens.

The host database hands out tokens when a DATALINK column is retrieved; the
token is embedded in the file name so applications keep using the plain file
system API, and DLFS validates it (through the upcall daemon) during
``fs_lookup``.  The paper's extension introduces *multiple token types* --
read tokens and write (update) tokens -- and requires the type used to be
consistent with the mode in which the file is later opened (Section 4.1).

Tokens are HMAC-SHA256 signatures over (path, type, expiry) truncated to 16
hex characters, plus the type letter and the expiry timestamp, e.g.
``W-125.000000-1a2b3c...``.

Clock-skew semantics: tokens are stamped with the *issuing* node's clock
(the host database's domain) but validated against the *validating* node's
clock (the file server's domain).  The two domains only merge at
synchronization points, so a token's effective lifetime shifts by the skew
between the nodes -- exactly as in a real distributed deployment, where
issuer and validator share a secret but not a clock.  Skew is bounded by
the work outstanding since the nodes last synchronized (milliseconds here),
which is negligible against real TTLs (the default is 60 simulated
seconds); tests that probe exact TTL boundaries use a single clock.

:class:`TokenCache` is the host-side cache in front of token generation:
tokens are capabilities, not nonces, so a still-live token for the same
(server, path, access) can be handed out again without recomputing the HMAC
-- the first slice of the read-caching roadmap item.  Hit/miss counters are
surfaced through :meth:`repro.datalinks.engine.DataLinksEngine.token_cache_stats`.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import InvalidTokenError, TokenExpiredError
from repro.simclock import SimClock

_SIGNATURE_HEX_CHARS = 16
DEFAULT_TOKEN_TTL = 60.0

# Shared (secret, path, type, expiry) -> signature memo; see TokenManager._sign.
_SIGNATURE_CACHE: dict[tuple, str] = {}
_SIGNATURE_CACHE_LIMIT = 4096


class TokenType(enum.Enum):
    READ = "R"
    WRITE = "W"

    @property
    def allows_write(self) -> bool:
        return self is TokenType.WRITE

    @property
    def allows_read(self) -> bool:
        # A write token subsumes read permission, as in the prototype.
        return True


_TOKEN_TYPES_BY_CODE = {member.value: member for member in TokenType}


@dataclass(frozen=True, slots=True)
class AccessToken:
    """A parsed access token."""

    token_type: TokenType
    expires_at: float
    signature: str

    def render(self) -> str:
        return f"{self.token_type._value_}-{self.expires_at:.6f}-{self.signature}"

    @classmethod
    def parse(cls, text: str) -> "AccessToken":
        parts = text.split("-", 2)
        if len(parts) != 3:
            raise InvalidTokenError(f"malformed token {text!r}")
        type_code, expiry_text, signature = parts
        try:
            token_type = _TOKEN_TYPES_BY_CODE[type_code]
        except KeyError:
            raise InvalidTokenError(f"malformed token {text!r}") from None
        try:
            expires_at = float(expiry_text)
        except ValueError:
            raise InvalidTokenError(f"malformed token {text!r}") from None
        return cls(token_type=token_type, expires_at=expires_at, signature=signature)


class TokenCache:
    """Host-side cache of handed-out tokens, keyed by
    (server, path, type, requested TTL).

    The requested TTL is part of the key, so a caller asking for a
    short-lived capability can never receive a longer-lived cached one (and
    vice versa) -- each TTL class caches its own token.  Within a class a
    token is reused only while at least ``min_remaining_fraction`` of the
    TTL remains, so callers never receive a token about to expire out from
    under them; staler entries are dropped on lookup.

    The cache is bounded: expired entries are swept whenever the entry count
    reaches ``max_entries`` on a store, and if the sweep is not enough the
    oldest entries are dropped FIFO until the new token fits.  Without this
    the cache grew without bound -- every distinct (server, path, type, ttl)
    ever asked for stayed resident forever.  Evicting an *expired* entry can
    never change hit/miss accounting (a lookup of an expired entry was
    already a miss); evicting a live entry can turn a future hit into a
    miss, so ``max_entries`` should stay generously above the working set.
    """

    def __init__(self, clock: SimClock | None = None,
                 min_remaining_fraction: float = 0.5,
                 max_entries: int = 4096):
        self._clock = clock
        self.min_remaining_fraction = float(min_remaining_fraction)
        self.max_entries = int(max_entries)
        self._entries: dict[tuple, AccessToken] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def lookup(self, server: str, path: str, token_type: TokenType,
               ttl: float) -> str | None:
        """A cached token string with enough remaining life, or ``None``."""

        key = (server, path, token_type, float(ttl))
        try:
            token = self._entries[key]
        except KeyError:
            token = None
        if token is not None:
            clock = self._clock
            remaining = token.expires_at - (clock._now if clock is not None else 0.0)
            if remaining >= ttl * self.min_remaining_fraction:
                self.hits += 1
                return token.render()
            del self._entries[key]
            self.evictions += 1
        self.misses += 1
        return None

    def evict_expired(self) -> int:
        """Drop every entry whose token has expired; returns the count."""

        now = self._now()
        doomed = [key for key, token in self._entries.items()
                  if token.expires_at <= now]
        for key in doomed:
            del self._entries[key]
        self.evictions += len(doomed)
        return len(doomed)

    def store(self, server: str, path: str, token_type: TokenType,
              ttl: float, token_text: str) -> None:
        if len(self._entries) >= self.max_entries:
            self.evict_expired()
            while len(self._entries) >= self.max_entries:
                # Dicts iterate in insertion order, so this drops the oldest
                # stored (not most recently used) entry -- FIFO is enough to
                # bound the cache without per-lookup bookkeeping.
                del self._entries[next(iter(self._entries))]
                self.evictions += 1
        self._entries[(server, path, token_type, float(ttl))] = \
            AccessToken.parse(token_text)

    def invalidate(self, server: str | None = None, path: str | None = None) -> int:
        """Drop matching entries (all of them by default); returns the count."""

        doomed = [key for key in self._entries
                  if (server is None or key[0] == server)
                  and (path is None or key[1] == path)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries),
                "evictions": self.evictions,
                "max_entries": self.max_entries,
                "hit_rate": self.hits / lookups if lookups else 0.0}


class TokenManager:
    """Generates and validates access tokens for one file server.

    The host-side DataLinks engine and the file server's DLFM each hold a
    :class:`TokenManager` configured with the same shared secret, mirroring
    the key shared between DB2 and the DLFM in the real system.
    """

    def __init__(self, secret: str, clock: SimClock | None = None,
                 default_ttl: float = DEFAULT_TOKEN_TTL):
        self._secret = secret.encode("utf-8")
        self._clock = clock
        self.default_ttl = default_ttl

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def _sign(self, path: str, token_type: TokenType, expires_at: float) -> str:
        # Signatures are pure functions of (secret, path, type, expiry) and
        # every generate/validate pair computes the same one twice; a small
        # shared memo keeps the HMAC off the upcall hot path.
        key = (self._secret, path, token_type._value_, f"{expires_at:.6f}")
        try:
            return _SIGNATURE_CACHE[key]
        except KeyError:
            pass
        message = f"{key[1]}|{key[2]}|{key[3]}".encode("utf-8")
        digest = hmac.new(self._secret, message, hashlib.sha256).hexdigest()
        if len(_SIGNATURE_CACHE) >= _SIGNATURE_CACHE_LIMIT:
            _SIGNATURE_CACHE.clear()
        signature = _SIGNATURE_CACHE[key] = digest[:_SIGNATURE_HEX_CHARS]
        return signature

    # -- generation -----------------------------------------------------------------
    def generate(self, path: str, token_type: TokenType,
                 ttl: float | None = None) -> str:
        """Create a token string for *path* valid for *ttl* simulated seconds."""

        clock = self._clock
        if clock is not None:
            clock.charge("token_generate")
            now = clock._now
        else:
            now = 0.0
        expires_at = now + (ttl if ttl is not None else self.default_ttl)
        signature = self._sign(path, token_type, expires_at)
        return AccessToken(token_type, expires_at, signature).render()

    # -- validation -------------------------------------------------------------------
    def validate(self, token_text: str, path: str) -> AccessToken:
        """Check signature and expiry; returns the parsed token or raises."""

        clock = self._clock
        if clock is not None:
            clock.charge("token_validate")
        token = AccessToken.parse(token_text)
        expected = self._sign(path, token.token_type, token.expires_at)
        if not hmac.compare_digest(expected, token.signature):
            raise InvalidTokenError(f"bad token signature for {path!r}")
        if (clock._now if clock is not None else 0.0) > token.expires_at:
            raise TokenExpiredError(
                f"token for {path!r} expired at {token.expires_at:.3f}")
        return token
