"""Shard replication: WAL shipping, writable failover, reversed-ship fail-back.

The paper's architecture leaves every linked file under exactly one DLFM, so
a file-server crash makes that shard's files unreadable until recovery.
This module adds a *serving/witness* replication scheme per shard:

* :class:`WalShipper` streams the serving DLFM repository's **durable** WAL
  records to each witness over a daemon channel
  (:class:`~repro.datalinks.dlfm.daemons.ReplicaDaemon`), triggered by the
  repository WAL's flush hook -- only flushed records ship, so a witness
  can never hold a transaction the serving node could lose in a crash;
  shipping is a *pipelined* send in simulated time (the witness applies
  batches on its own clock domain; the sender pays only the enqueue cost),
  so replication overlaps the serving node's foreground work;
* :class:`ReplicaApplier` applies the shipped stream on a witness:
  committed transactions are redone into the witness repository, aborted
  ones are dropped, and transactions that shipped a PREPARE vote but no
  outcome are kept *in doubt* until promotion resolves them from the host
  database's durable outcome (two-phase commit across a failover);
* :class:`WitnessSoftState` holds the node-local soft state a witness
  accrues while serving *follower reads* (token-registry and Sync entries):
  the witness repository is redo-only -- its heaps must keep mirroring the
  serving node's row ids exactly -- so this state lives beside it and is
  migrated into the repository when the witness is promoted;
* :class:`EpochRegistry` / :class:`EpochGuard` implement fencing: each
  shard has a monotonically increasing epoch and exactly one serving node;
  promotion bumps the epoch, so a deposed ex-serving node fails every
  upcall and every engine-facing branch operation with
  :class:`~repro.errors.FencedNodeError` until it rejoins the stream;
* :class:`ReplicatedShard` groups one shard's nodes and rotates their
  roles.  **Failover is writable**: :meth:`ReplicatedShard.promote` turns
  the best witness into a full primary -- it leaves redo-only mode, accepts
  link/unlink branches and 2PC enlistment (the engine's connections are
  re-routed through the deployment's
  :class:`~repro.datalinks.routing.ReplicationRouter`), and checkpoints its
  repository so the applied state survives its own crashes.  **Fail-back is
  a reversed ship**: the recovered ex-serving node rejoins as a witness fed
  by the *new* primary's WAL stream and catches up from the LSN recorded
  when it was deposed -- no snapshot resync -- then roles swap back under a
  fence (:meth:`ReplicatedShard.fail_back`).  A snapshot resync remains the
  fallback whenever the deposed node's durable state diverged from the
  serving lineage (it held records that never shipped).

Failpoints fire at every replication step so the crash-matrix tests can
inject a primary crash mid-protocol: ``replicate:ship`` (before a WAL batch
leaves the sender), ``replicate:apply`` (before a witness applies a batch),
``replicate:promote`` / ``replicate:catchup`` / ``replicate:fence``
(inside promotion, in that order).
"""

from __future__ import annotations

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.routing import NodeRole
from repro.errors import (
    FencedNodeError,
    FileSystemError,
    IPCError,
    ReplicationError,
)
from repro.ipc.channel import Channel
from repro.simclock import rendezvous, synchronized_call
from repro.storage.wal import LogRecordType
from repro.util.lsn import LSN


# ---------------------------------------------------------------------------
# epochs and fencing
# ---------------------------------------------------------------------------

class EpochRegistry:
    """The cluster manager's view: one epoch and one serving node per shard.

    Conceptually this lives beside the host database (the component that
    survives shard failures); promotions go through it so there is a single
    source of truth for "who serves shard S" and a recovered ex-primary can
    be told it no longer does.
    """

    def __init__(self):
        self._epochs: dict[str, int] = {}
        self._serving: dict[str, str] = {}
        #: Bumped on every lease change; replica sets refresh their
        #: serving-node resolution through :meth:`subscribe` (push
        #: invalidation -- read routing touches the resolved name on every
        #: request, so polling this counter there was measurable).
        self.version = 0
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Call *listener* () after every lease change."""

        if listener not in self._listeners:
            self._listeners.append(listener)

    def register(self, shard: str, node: str) -> int:
        """Grant the initial lease for *shard* to *node* (epoch 1)."""

        if shard not in self._epochs:
            self._epochs[shard] = 1
            self._serving[shard] = node
            self.version += 1
            for listener in self._listeners:
                listener()
        return self._epochs[shard]

    def current_epoch(self, shard: str) -> int:
        return self._epochs.get(shard, 0)

    def serving_node(self, shard: str) -> str | None:
        return self._serving.get(shard)

    def promote(self, shard: str, node: str) -> int:
        """Make *node* the serving node of *shard*, bumping the epoch.

        Idempotent: promoting the node that already serves does not bump.
        """

        if shard not in self._epochs:
            return self.register(shard, node)
        if self._serving[shard] != node:
            self._epochs[shard] += 1
            self._serving[shard] = node
            self.version += 1
            for listener in self._listeners:
                listener()
        return self._epochs[shard]

    def is_current(self, shard: str, node: str) -> bool:
        try:
            return self._serving[shard] == node
        except KeyError:
            return node is None


class EpochGuard:
    """One node's lease on its shard, checked before serving upcalls."""

    def __init__(self, registry: EpochRegistry, shard: str, node: str):
        self.registry = registry
        self.shard = shard
        self.node = node

    @property
    def fenced(self) -> bool:
        # ``not self.registry.is_current(...)`` with the lookup written out
        # inline -- this gate runs before every served upcall.
        try:
            return self.registry._serving[self.shard] != self.node
        except KeyError:
            return self.node is not None

    def check(self) -> None:
        if self.fenced:
            raise FencedNodeError(
                f"node {self.node!r} was fenced: shard {self.shard!r} is served "
                f"by {self.registry.serving_node(self.shard)!r} at epoch "
                f"{self.registry.current_epoch(self.shard)}")


# ---------------------------------------------------------------------------
# witness-side apply
# ---------------------------------------------------------------------------

_DATA_RECORDS = (LogRecordType.INSERT, LogRecordType.UPDATE,
                 LogRecordType.DELETE, LogRecordType.CLR)

#: Repository tables whose rows are node-local soft state: every node keeps
#: (and enforces against) its own, so a serving-side write to them does not
#: make a follower stale.
_SOFT_STATE_TABLES = frozenset({"token_entries", "sync_entries"})

_OUTCOME_RECORDS = (LogRecordType.COMMIT, LogRecordType.ABORT,
                    LogRecordType.PREPARE)


class ReplicaApplier:
    """Applies the primary's shipped WAL stream to the witness repository.

    Data records are buffered per transaction and redone only once the
    transaction's COMMIT arrives (the witness never exposes uncommitted
    primary state).  A transaction whose PREPARE shipped but whose outcome
    did not is held in doubt; :meth:`resolve_in_doubt` drives it to the
    coordinator's durable outcome during promotion.

    The witness repository's heaps mirror the primary's row ids exactly, so
    redo is positional; the one deliberate divergence is the ``ino`` column
    of ``linked_files``, which is rebound to the witness file system's inode
    numbers as rows arrive (the primary's inode numbers are meaningless on
    another node).
    """

    def __init__(self, database, files=None, failpoints: dict | None = None):
        self._db = database
        self._files = files
        self.failpoints = failpoints if failpoints is not None else {}
        self._pending: dict[int, list] = {}
        self._prepared: dict[int, int | None] = {}
        self.applied_lsn = LSN(0)
        self.applied_commits = 0
        self.applied_records = 0
        self.dropped_txns = 0
        #: Paths whose local bytes predate a committed update-in-place on
        #: the serving node: the ``linked_files`` row (new ``last_size`` /
        #: ``last_mtime``) replicated over the stream, but the rewritten
        #: content did not -- the mirror copy was taken at ingest.  The
        #: router skips these witnesses for follower reads of the file;
        #: rejoin/resync/promotion refresh the copy and clear the mark.
        self.stale_paths: set[str] = set()

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    # ------------------------------------------------------------------ apply --
    def apply(self, records: list) -> dict:
        """Apply one shipped batch; returns counters for the daemon reply."""

        if records and self.failpoints:
            self._fire("replicate:apply")
        commits = aborts = 0
        pending = self._pending
        for record in records:
            if record.type in _DATA_RECORDS:
                try:
                    pending[record.txn_id].append(record)
                except KeyError:
                    pending[record.txn_id] = [record]
            elif record.type is LogRecordType.PREPARE:
                self._prepared[record.txn_id] = record.extra.get("host_txn_id")
            elif record.type is LogRecordType.COMMIT:
                self._apply_txn(record.txn_id)
                commits += 1
            elif record.type is LogRecordType.ABORT:
                self._drop_txn(record.txn_id)
                aborts += 1
            elif record.type is LogRecordType.CREATE_TABLE:
                schema = record.extra["schema"]
                if not self._db.catalog.has_table(schema.name):
                    self._db.catalog.create_table(schema.copy())
            elif record.type is LogRecordType.DROP_TABLE:
                if self._db.catalog.has_table(record.table):
                    self._db.catalog.drop_table(record.table)
            if record.lsn > self.applied_lsn:
                self.applied_lsn = record.lsn
        return {"commits": commits, "aborts": aborts,
                "applied_lsn": self.applied_lsn.value,
                "pending_txns": len(self._pending)}

    def _apply_txn(self, txn_id: int) -> None:
        pending = self._pending
        try:
            records = pending[txn_id]
            del pending[txn_id]
        except KeyError:
            records = None
        if records:
            db = self._db
            redo = self._redo
            files = self._files
            applied = 0
            run = 0
            for record in records:
                if files is not None and record.table == "linked_files":
                    # Redoing a link row can touch the local file system
                    # (its charges would interleave with deferred
                    # ``row_write`` charges), so flush the batched run
                    # first and charge this record's write in place.
                    if run:
                        self._charge_row_writes(run)
                        run = 0
                    if redo(record):
                        applied += 1
                        db._charge("row_write")
                elif redo(record):
                    applied += 1
                    run += 1
            if run:
                self._charge_row_writes(run)
            self.applied_records += applied
        try:
            del self._prepared[txn_id]
        except KeyError:
            pass
        self.applied_commits += 1

    def _charge_row_writes(self, count: int) -> None:
        """One aggregated ``row_write`` advance for *count* redone records.

        ``charge_run`` replays the per-record amounts in order, so the
        simulated clock and stats match *count* scalar charges exactly.
        """

        db = self._db
        clock = db.clock
        if clock is None:
            return
        labels = db._charge_labels
        try:
            label = labels["row_write"]
        except KeyError:
            label = labels["row_write"] = \
                db.stats_prefix + "row_write" if db.stats_prefix else None
        clock.charge_run("row_write", count, scale=db.cost_scale, label=label)

    def _drop_txn(self, txn_id: int) -> None:
        try:
            del self._pending[txn_id]
            self.dropped_txns += 1
        except KeyError:
            pass
        try:
            del self._prepared[txn_id]
        except KeyError:
            pass

    def _redo(self, record) -> bool:
        """Redo one data record into the witness heaps, maintaining indexes.

        Returns whether the record was applied (its ``row_write`` cost is
        charged by the caller, batched across the transaction).
        """

        db = self._db
        if record.table is None or not db.catalog.has_table(record.table):
            return False
        heap = db.catalog.heap(record.table)
        effective = record.type
        if record.type is LogRecordType.CLR:
            effective = LogRecordType(record.extra["redo_as"])
        after = dict(record.after) if record.after is not None else None
        is_link_row = record.table == "linked_files" and self._files is not None
        if after is not None and is_link_row:
            after["ino"] = self._local_ino(after["path"], record.rid)
        if effective in (LogRecordType.INSERT, LogRecordType.UPDATE):
            if heap.exists(record.rid):
                before = heap.get(record.rid)
                db.catalog.index_remove(record.table, before, record.rid)
                heap.update(record.rid, after)
                if is_link_row and (
                        before.get("last_size") != after.get("last_size")
                        or before.get("last_mtime") != after.get("last_mtime")):
                    # An update-in-place committed on the serving node; the
                    # data path is not in the WAL stream, so this node's
                    # mirrored bytes are now the pre-update content.
                    self.stale_paths.add(after["path"])
            else:
                heap.insert(after, rid=record.rid)
            db.catalog.index_insert(record.table, after, record.rid)
            if is_link_row:
                self._constrain_local_file(after)
        elif effective is LogRecordType.DELETE:
            if heap.exists(record.rid):
                before = heap.get(record.rid)
                db.catalog.index_remove(record.table, before, record.rid)
                heap.delete(record.rid)
                if is_link_row:
                    self.stale_paths.discard(before["path"])
                    self._release_local_file(before)
        return True

    def _constrain_local_file(self, row: dict) -> None:
        """Apply the link's access constraints to the mirrored copy.

        The link ran on the primary, so its ownership takeover / read-only
        marking never touched this node's files -- without this, a bare URL
        read through the witness would bypass the token checks that guard
        the primary's copy.
        """

        path = row["path"]
        if not self._files.exists(path):
            return
        mode = ControlMode.from_string(row["control_mode"])
        if mode.takes_over_on_link:
            self._files.take_over(path, mode=0o400)
        elif mode.made_read_only_on_link:
            attrs = self._files.stat(path)
            if attrs.mode & 0o222:
                self._files.chmod(path, attrs.mode & ~0o222)

    def _release_local_file(self, row: dict) -> None:
        """Undo the local constraints when an unlink replicates over."""

        path = row["path"]
        if not self._files.exists(path):
            return
        if row.get("on_unlink") == "DELETE":
            self._files.unlink(path)
            return
        mode = ControlMode.from_string(row["control_mode"])
        if mode.takes_over_on_link or mode.made_read_only_on_link:
            self._files.restore_ownership(path, row["original_uid"],
                                          row["original_gid"],
                                          row["original_mode"])

    def _local_ino(self, path: str, rid: int) -> int:
        """The witness inode for *path*, or a placeholder while it is absent.

        Keeping the primary's inode would eventually collide with a real
        witness inode in the unique ``linked_files_ino`` index; ``-rid`` is
        negative (no real inode is) and unique per row.  Promotion rebinds
        the real inode once the content is restored.
        """

        try:
            return self._files.ino_of(path)
        except FileSystemError:
            return -rid

    # --------------------------------------------------------------- in doubt --
    def in_doubt_host_txns(self) -> list[int]:
        """Host transaction ids whose PREPARE shipped but whose outcome did not."""

        return sorted(host_txn_id for host_txn_id in self._prepared.values()
                      if host_txn_id is not None)

    def resolve_in_doubt(self, outcomes: dict) -> dict:
        """Drive shipped in-doubt transactions to the coordinator's outcome.

        ``outcomes`` maps host transaction id to ``"committed"`` /
        ``"aborted"`` / ``"unknown"``; anything but a durable commit is
        presumed aborted, exactly like a recovering participant.  Local
        transactions that never voted cannot have committed and are dropped.
        """

        committed, aborted = [], []
        for txn_id, host_txn_id in sorted(self._prepared.items()):
            if outcomes.get(host_txn_id) == "committed":
                self._apply_txn(txn_id)
                committed.append(host_txn_id)
            else:
                self._drop_txn(txn_id)
                aborted.append(host_txn_id if host_txn_id is not None else txn_id)
        for txn_id in list(self._pending):
            self._drop_txn(txn_id)
        return {"committed": committed, "aborted": aborted}

    # ----------------------------------------------------------------- resync --
    def reset_from_snapshot(self, snapshot: dict, state_lsn: LSN) -> None:
        """Replace the witness repository with a primary catalog snapshot."""

        self._db.catalog.load_snapshot(snapshot)
        self._db.catalog.rebuild_indexes()
        # Fresh heaps, fresh mutation counters: stale scan-max trackers
        # must not validate against them (see Database.reset_catalog).
        self._db._max_trackers.clear()
        self._pending.clear()
        self._prepared.clear()
        self.applied_lsn = state_lsn

    def status(self) -> dict:
        return {
            "applied_lsn": self.applied_lsn.value,
            "applied_commits": self.applied_commits,
            "applied_records": self.applied_records,
            "pending_txns": len(self._pending),
            "in_doubt": self.in_doubt_host_txns(),
        }


# ---------------------------------------------------------------------------
# witness-local soft state (follower reads)
# ---------------------------------------------------------------------------

class WitnessSoftState:
    """Node-local token-registry and Sync entries for follower reads.

    A witness serving reads must register validated tokens (fs_lookup) and
    Sync entries (open of a full-control file) like any DLFM, but it cannot
    write them into its repository heaps: those are redo-only and must keep
    mirroring the serving node's row ids exactly, or positional redo of the
    shipped stream would corrupt them.  This ephemeral store holds that
    state beside the repository.  It is volatile -- cleared by a crash,
    exactly like the branch table -- and migrated into the real repository
    when the node is promoted to a full primary (whose repository writes go
    through its own WAL again).
    """

    def __init__(self):
        self.token_entries: list[dict] = []
        self.sync_entries: list[dict] = []

    # ----------------------------------------------------------------- tokens --
    def add_token_entry(self, path: str, userid: int, token_type: str,
                        expires_at: float) -> None:
        self.token_entries.append({"path": path, "userid": userid,
                                   "token_type": token_type,
                                   "expires_at": expires_at})

    def find_token_entry(self, path: str, userid: int, *, for_write: bool,
                         now: float) -> dict | None:
        for entry in self.token_entries:
            if entry["path"] != path or entry["userid"] != userid:
                continue
            if entry["expires_at"] < now:
                continue
            if for_write and entry["token_type"] != "W":
                continue
            return entry
        return None

    def purge_expired_tokens(self, now: float) -> int:
        before = len(self.token_entries)
        self.token_entries = [entry for entry in self.token_entries
                              if entry["expires_at"] >= now]
        return before - len(self.token_entries)

    # ------------------------------------------------------------ sync entries --
    def add_sync_entry(self, path: str, access: str, userid: int) -> None:
        self.sync_entries.append({"path": path, "access": access,
                                  "userid": userid})

    def remove_sync_entry(self, path: str, access: str, userid: int) -> int:
        for index, entry in enumerate(self.sync_entries):
            if (entry["path"], entry["access"], entry["userid"]) == \
                    (path, access, userid):
                del self.sync_entries[index]
                return 1
        return 0

    def sync_entries_for(self, path: str) -> list[dict]:
        return [entry for entry in self.sync_entries if entry["path"] == path]

    def clear(self) -> None:
        self.token_entries.clear()
        self.sync_entries.clear()


# ---------------------------------------------------------------------------
# serving-side shipping
# ---------------------------------------------------------------------------

class WalShipper:
    """Streams the primary repository's durable WAL records to the witness.

    Registered as a flush listener on the primary repository's WAL, so
    shipping is continuous: every log force (commit, group-commit drain,
    prepare vote) pushes the newly durable suffix through the replica
    daemon channel.  A witness that is down does not stall the primary --
    the cursor simply stops advancing and the records ship on the next
    successful flush or an explicit :meth:`ship` (the *replica lag* the
    failover tests exercise).
    """

    def __init__(self, repository, channel: Channel,
                 failpoints: dict | None = None):
        self._repository = repository
        self._channel = channel
        self.failpoints = failpoints if failpoints is not None else {}
        self.cursor: LSN = repository.durable_lsn()
        self.paused = False
        self.shipped_records = 0
        self.ship_errors = 0
        repository.add_wal_listener(self._on_flush)

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    def _on_flush(self, wal) -> None:
        if self.paused:
            return
        try:
            self.ship()
        except IPCError:
            # The witness is unreachable; accumulate lag, do not fail the
            # primary's commit.
            self.ship_errors += 1

    def ship(self) -> int:
        """Ship every durable record past the cursor; returns how many."""

        records = self._repository.wal_records_since(self.cursor)
        count = len(records)
        if not count:
            return 0
        if self.failpoints:
            self._fire("replicate:ship")
        # Pipelined: the primary does not wait for the witness to apply.
        self._channel.post("apply_wal", records=records)
        self.cursor = records[-1].lsn
        self.shipped_records += count
        return count

    def lag(self) -> int:
        """Durable serving-side records the witness has not received yet."""

        return len(self._repository.wal_records_since(self.cursor))

    def pending_lag(self) -> int:
        """Hard-state records the witness has not applied, durable or not.

        This is the *staleness* measure follower reads are bounded by: a
        group-commit window can hold committed-and-visible transactions
        whose records have not been forced (and therefore not shipped), and
        a witness missing them must not be treated as caught up -- its
        mirrored file copies have not had the link-time access constraints
        applied yet, so serving from it would not merely be stale, it would
        skip token enforcement.

        Node-local soft state is excluded: token-registry and Sync rows are
        per-node semantics anyway (a witness validates against its own
        store), so a serving-side token handout must not disqualify the
        witness.  Outcome markers count exactly when their transaction
        touched hard state -- the dangerous shape is a link whose data and
        PREPARE shipped (buffered on the witness, awaiting the outcome)
        while the COMMIT still sits in the serving node's group-commit
        window.
        """

        count = 0
        hard_txn: dict[int, bool] = {}
        for record in self._repository.wal_records_pending(self.cursor):
            if record.table is not None:
                if record.table not in _SOFT_STATE_TABLES:
                    count += 1
                continue
            if record.type not in _OUTCOME_RECORDS:
                continue            # checkpoints etc.: nothing to apply
            txn_id = record.txn_id
            if txn_id not in hard_txn:
                hard_txn[txn_id] = self._txn_touches_hard_state(txn_id)
            if hard_txn[txn_id]:
                count += 1
        return count

    def _txn_touches_hard_state(self, txn_id: int) -> bool:
        for record in self._repository.db.wal.records_of(txn_id,
                                                         durable_only=False):
            if record.table is not None and \
                    record.table not in _SOFT_STATE_TABLES:
                return True
        return False

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def detach(self) -> None:
        self._repository.remove_wal_listener(self._on_flush)


# ---------------------------------------------------------------------------
# the replicated shard
# ---------------------------------------------------------------------------

class ReplicatedShard:
    """One shard's node group: a serving node plus witness subscribers.

    Roles are *dynamic*.  The node that created the shard is its **home
    primary**, but any node can hold the serving lease: promotion rotates
    the lease to a caught-up witness (which then takes writes -- link and
    unlink branches, 2PC votes -- like any primary), and fail-back is just a
    promotion back to the home primary after a reversed-ship catch-up.  The
    :class:`~repro.datalinks.routing.ReplicationRouter` reads roles from
    here; the DLFMs enforce them through epoch fencing plus the follower
    read gate.
    """

    def __init__(self, name: str, primary, witnesses, registry: EpochRegistry,
                 engine, clock=None):
        from repro.datalinks.dlfm.daemons import ReplicaDaemon

        self.name = name
        self.registry = registry
        self.engine = engine
        self.clock = clock
        #: Set by :meth:`ReplicationRouter.register_replicated`; provides the
        #: follower-read policy (on/off switch and staleness bound).
        self.router = None
        self.home_primary = primary.name
        self.nodes = {primary.name: primary}
        for node in witnesses:
            self.nodes[node.name] = node
        #: Fault-injection hooks shared by every shipper, applier and
        #: promotion: ``replicate:ship``, ``replicate:apply``,
        #: ``replicate:promote``, ``replicate:catchup``, ``replicate:fence``.
        self.failpoints: dict = {}
        registry.register(name, primary.name)
        #: The current lease holder's name, refreshed by registry push
        #: (``_refresh_serving``): read routing touches this on every
        #: request and a plain attribute beats re-resolving per read.
        self.serving_name = registry.serving_node(name)
        registry.subscribe(self._refresh_serving)
        self._daemons = {}
        for node in self.nodes.values():
            node.dlfm.set_fencing(EpochGuard(registry, name, node.name))
            node.dlfm.set_read_gate(
                lambda node_name=node.name: self._read_gate(node_name))
            # Every node gets a replication endpoint up front: the home
            # primary needs one the moment it is deposed and rejoins as a
            # witness fed by the reversed stream.
            self._daemons[node.name] = ReplicaDaemon(node.dlfm, node.clock)
        #: Active streams: subscriber node name -> :class:`WalShipper`
        #: sourced at the current serving node's repository.
        self._streams: dict[str, WalShipper] = {}
        self._synced: dict[str, bool] = {}
        #: Deposed nodes' catch-up points in the *new* serving node's WAL
        #: sequence; ``None`` forces the snapshot-resync fallback.
        self._rejoin_base: dict[str, LSN | None] = {}
        self._retired_shipped = 0
        self._retired_ship_errors = 0
        self.mirror_misses = 0
        self.full_resyncs = 0
        self.reversed_catchups = 0
        for node in witnesses:
            self._subscribe(node.name)

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    # -------------------------------------------------------------------- roles --
    def _refresh_serving(self) -> None:
        """Registry push hook: re-resolve :attr:`serving_name` on lease change."""

        self.serving_name = self.registry.serving_node(self.name)

    @property
    def serving(self):
        """The file server currently holding the shard's serving lease."""

        return self.nodes[self.serving_name]

    @property
    def failed_over(self) -> bool:
        return self.serving_name != self.home_primary

    @property
    def epoch(self) -> int:
        return self.registry.current_epoch(self.name)

    @property
    def primary(self):
        """The shard's home primary (static role; may not be serving)."""

        return self.nodes[self.home_primary]

    @property
    def witnesses(self) -> list:
        """The home witnesses, in creation order."""

        return [node for name, node in self.nodes.items()
                if name != self.home_primary]

    @property
    def witness(self):
        """The first home witness (single-witness compatibility surface)."""

        return self.witnesses[0]

    @property
    def shipper(self) -> WalShipper | None:
        """The stream feeding the first home witness, while one exists."""

        return self._streams.get(self.witness.name)

    @property
    def applier(self) -> ReplicaApplier | None:
        """The first home witness's applier, while it is subscribed."""

        return self.witness.dlfm.replica

    def is_subscribed(self, node_name: str) -> bool:
        """Is *node_name* a synced subscriber of the serving node's stream?"""

        try:
            node = self.nodes[node_name]
        except KeyError:
            return False
        if node_name not in self._streams or node.dlfm.replica is None:
            return False
        try:
            return self._synced[node_name]
        except KeyError:
            return False

    def subscriber_lag(self, node_name: str) -> int | None:
        """Staleness of one subscriber in records, or ``None`` off-stream.

        Counts *pending* lag (see :meth:`WalShipper.pending_lag`): records
        the subscriber has not applied, whether or not they are durable at
        the serving node yet.
        """

        shipper = self._streams.get(node_name)
        return shipper.pending_lag() if shipper is not None else None

    def role_of(self, node_name: str) -> str:
        node = self.nodes[node_name]
        if not node.running:
            return NodeRole.DOWN
        if node_name == self.serving_name:
            return NodeRole.SERVING
        if self.is_subscribed(node_name):
            return NodeRole.WITNESS
        return NodeRole.FENCED

    def roles(self) -> dict[str, str]:
        return {name: self.role_of(name) for name in self.nodes}

    # ---------------------------------------------------------- follower reads --
    def follower_eligible(self, node_name: str, max_lag: int = 0) -> bool:
        """May *node_name* serve a bounded-staleness read right now?

        Requires a live stream end to end: the node is a synced subscriber
        with its daemon up, the serving node is running (the staleness
        bound is derived from shipper lag, which is only meaningful against
        a live source), shipping is not paused, and the lag is within
        *max_lag* records.
        """

        try:
            node = self.nodes[node_name]
        except KeyError:
            return False
        if not node.running:
            return False
        serving_name = self.serving_name
        if node_name == serving_name:
            return False
        # ``is_subscribed`` written out inline (this gate runs per routed
        # follower read): a synced subscriber has a stream, a live applier
        # and a True entry in the synced map.
        try:
            shipper = self._streams[node_name]
        except KeyError:
            return False
        if node.dlfm.replica is None:
            return False
        try:
            if not self._synced[node_name]:
                return False
        except KeyError:
            return False
        if not self._daemons[node_name].running:
            return False
        if not self.nodes[serving_name].running:
            return False
        if shipper.paused:
            return False
        # Steady-state shortcut for ``shipper.pending_lag() <= max_lag``:
        # LSNs are append-ordered, so a ship cursor at (or past) the WAL
        # tail means nothing is pending and the lag is exactly zero --
        # no record scan or hard-state classification needed.
        records = shipper._repository.db.wal._records
        if not records or records[-1].lsn <= shipper.cursor:
            return 0 <= max_lag
        return shipper.pending_lag() <= max_lag

    def _read_gate(self, node_name: str) -> bool:
        """DLFM-side gate: may this node accept read-path upcalls?"""

        if node_name == self.serving_name:
            return True
        if self.router is not None:
            return self.router.follower_ok(self.name, node_name)
        return self.follower_eligible(node_name)

    # ------------------------------------------------------- stream management --
    def _subscribe(self, node_name: str, base: LSN | None = None) -> WalShipper:
        """Attach *node_name* to the serving node's WAL stream.

        With *base*, shipping and applying pick up at that LSN of the
        serving repository's sequence (the reversed-ship rejoin path);
        without it, at the current durable frontier (fresh witnesses, whose
        bootstrapped repository equals the serving node's).
        """

        node = self.nodes[node_name]
        applier = node.dlfm.enable_replica_mode(failpoints=self.failpoints)
        channel = Channel(self._daemons[node_name], self.serving.clock,
                          latency_primitive="db_dlfm_message",
                          sender=f"wal-ship:{self.name}:{node_name}")
        shipper = WalShipper(self.serving.dlfm.repository, channel,
                             failpoints=self.failpoints)
        if base is not None:
            shipper.cursor = base
            applier.applied_lsn = base
        self._streams[node_name] = shipper
        self._synced[node_name] = True
        self._rejoin_base.pop(node_name, None)
        return shipper

    def _detach_stream(self, node_name: str) -> None:
        shipper = self._streams.pop(node_name, None)
        if shipper is not None:
            shipper.detach()
            self._retired_shipped += shipper.shipped_records
            self._retired_ship_errors += shipper.ship_errors

    # ---------------------------------------------------------------- mirroring --
    def _copy_below_dlfs(self, node, path: str, content: bytes, uid: int,
                         gid: int) -> None:
        """Write *content* on *node* through the DLFM-privileged path."""

        lfs = node.raw_lfs
        root = node.files.dlfm_cred
        directory = path.rsplit("/", 1)[0] or "/"
        if directory != "/":
            lfs.makedirs(directory, root)
            lfs.chown(directory, uid, gid, root)
        lfs.write_file(path, content, root, create=True)
        lfs.chown(path, uid, gid, root)

    def mirror_file(self, path: str, content: bytes, uid: int, gid: int) -> None:
        """Copy a just-ingested file to every subscriber (same path/owner).

        Runs below DLFS (the DLFM-privileged path) so mirroring never
        recurses into DataLinks interception on the witness.  A crashed
        witness misses the mirror (counted, like a missed WAL shipment);
        promotion or rejoin later restores what it can from the archive or
        the serving node's copy.
        """

        for node_name in list(self._streams):
            node = self.nodes[node_name]
            if not node.running:
                self.mirror_misses += 1
                continue
            # Synchronous mirror: the ingest path waits for the witness copy
            # (that durability is exactly why promotion can serve the
            # content), so the witness domain syncs up and the caller merges
            # back after.
            with synchronized_call(self.clock, node.clock):
                self._copy_below_dlfs(node, path, content, uid, gid)

    def receive_file(self, path: str, content: bytes, uid: int, gid: int) -> None:
        """Ingest a handed-off file: serving-node copy plus witness mirror.

        The content half of a prefix rebalance into this shard -- written
        below DLFS on the serving node and mirrored to every subscriber in
        the same step, so witness placement follows the prefix: a
        promotion *after* the move can serve the moved files from this
        shard's witness set (the repository rows arrive over the normal
        WAL stream when the hand-off branch commits).
        """

        with synchronized_call(self.clock, self.serving.clock):
            self._copy_below_dlfs(self.serving, path, content, uid, gid)
        self.mirror_file(path, content, uid, gid)

    def _mirror_missing_content(self, node) -> int:
        """Copy linked-file content *node* lacks (or holds stale) from the
        serving node.

        Used at rejoin/resync time: files ingested while the node was down
        (or deposed) exist only on the serving side and in the archive; the
        repository rows replicate over the stream, the bytes come from
        here.  A file the node *has* is still refreshed when its copy is
        marked stale by a replicated update-in-place (overwritten in place
        so the link-time constraints already applied stay put).  Returns
        how many files were copied.
        """

        serving = self.serving
        applier = node.dlfm.replica
        copied = 0
        for row in node.dlfm.repository.linked_files():
            path = row["path"]
            if not serving.files.exists(path):
                continue
            stale = applier is not None and path in applier.stale_paths
            if node.files.exists(path):
                if not stale:
                    continue
                content = serving.files.read(path)
                node.raw_lfs.write_file(path, content, node.files.dlfm_cred)
            else:
                content = serving.files.read(path)
                attrs = serving.files.stat(path)
                self._copy_below_dlfs(node, path, content, attrs.uid,
                                      attrs.gid)
            if applier is not None:
                applier.stale_paths.discard(path)
            copied += 1
        return copied

    def content_stale(self, node_name: str, path: str) -> bool:
        """Does *node_name*'s copy of *path* predate a committed
        update-in-place?  Router-facing (see
        :attr:`ReplicaApplier.stale_paths`)."""

        node = self.nodes.get(node_name)
        if node is None:
            return False
        applier = node.dlfm.replica
        return applier is not None and path in applier.stale_paths

    # ----------------------------------------------------------------- failover --
    def promote(self) -> dict:
        """Fail the shard over: promote the best witness to a full primary."""

        if self.failed_over and self.serving.running:
            # Idempotent: the shard already failed over to a live witness.
            return {"promoted": True, "epoch": self.epoch,
                    "serving": self.serving_name}
        return self.promote_to(self._select_promotion_target())

    def _select_promotion_target(self) -> str:
        eligible = [name for name in self._streams
                    if name != self.serving_name
                    and self.nodes[name].running
                    and self._synced.get(name)]
        if eligible:
            # The most caught-up witness loses the least (normally they tie
            # at lag zero, since shipping rides every log force).
            return max(eligible,
                       key=lambda name: self.nodes[name].dlfm.replica
                       .applied_lsn.value)
        witness = self.witness
        if not witness.running:
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{witness.name!r} is down (recover it first)")
        if not self._synced.get(witness.name):
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{witness.name!r} lost its replica state and has not "
                f"resynced from the primary")
        raise ReplicationError(
            f"cannot promote shard {self.name!r}: no synced running witness")

    def promote_to(self, target_name: str) -> dict:
        """Rotate the serving lease to *target_name* (a synced subscriber).

        Steps (each behind a failpoint): quiesce the streams -- when the old
        serving node is alive (a planned hand-off / fail-back) its WAL is
        flushed and shipped so nothing is lost -- run catch-up on the target
        (resolve shipped in-doubt transactions from the host database's
        durable outcome, restore content, rebind inodes and ownership), bump
        the epoch so every other node is fenced, then turn the target into a
        **full primary**: it leaves redo-only replica mode (migrating its
        follower-read soft state into the repository) and checkpoints, so
        the redo-applied state survives its own crashes.  Finally the
        remaining subscribers are re-sourced from the new serving node and
        the deposed ex-serving node's reversed-ship catch-up point is
        recorded.
        """

        target = self.nodes[target_name]
        if target_name == self.serving_name:
            return {"promoted": True, "epoch": self.epoch,
                    "serving": target_name}
        if not target.running:
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{target_name!r} is down (recover it first)")
        if not self._synced.get(target_name):
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{target_name!r} lost its replica state and has not "
                f"resynced from the primary")
        self._fire("replicate:promote")
        old_serving_name = self.serving_name
        old_serving = self.nodes[old_serving_name]
        # Promotion is driven by the cluster manager beside the host
        # database: the target syncs up to the order's send time, catch-up
        # runs on the target's own clock domain, and the manager waits for
        # completion (that is the failover latency experiments measure).
        with synchronized_call(self.clock, target.clock):
            if old_serving.running:
                old_serving.dlfm.repository.db.wal.flush()
                for shipper in self._streams.values():
                    if not shipper.paused:
                        try:
                            shipper.ship()
                        except IPCError:
                            pass
            residual_lag = {name: shipper.lag()
                            for name, shipper in self._streams.items()}
            for shipper in self._streams.values():
                shipper.pause()
            self._fire("replicate:catchup")
            applier = target.dlfm.replica
            outcomes = self.engine.host_transaction_outcomes(
                applier.in_doubt_host_txns())
            summary = target.dlfm.replica_catch_up(outcomes)
            self._fire("replicate:fence")
            epoch = self.registry.promote(self.name, target_name)
            # Past the fence: the target is a full primary now.  Sample the
            # inherited Sync entries before the soft-state migration so the
            # post-promotion rollback can tell the deposed node's opens
            # apart from this node's own live follower reads.
            inherited_sync = target.dlfm.inherited_sync_entry_ids()
            self._detach_stream(target_name)
            self._synced.pop(target_name, None)
            summary["soft_state"] = target.dlfm.disable_replica_mode()
            target.dlfm.repository.db.checkpoint()
        target_clean = residual_lag.get(target_name, 0) == 0
        base = target.dlfm.repository.db.wal.flushed_lsn
        # Re-source the remaining subscribers from the new serving node.
        for other_name in list(self._streams):
            other_clean = (target_clean
                           and residual_lag.get(other_name, 0) == 0)
            self._detach_stream(other_name)
            other = self.nodes[other_name]
            if not other.running:
                self._synced[other_name] = False
                self._rejoin_base[other_name] = None
                continue
            other.dlfm.replica.resolve_in_doubt(outcomes)
            self._subscribe(other_name, base=base)
            if not other_clean:
                self._resync_subscriber(other_name)
        # The deposed ex-serving node: remember where a reversed stream can
        # pick it up.  Divergence (durable records the target never
        # received) voids the fast path and forces the snapshot fallback.
        if old_serving.running:
            # Planned hand-off (fail-back): the old serving node is alive
            # and fully shipped; it becomes a witness on the spot.
            self._subscribe(old_serving_name, base=base)
        else:
            self._rejoin_base[old_serving_name] = base if target_clean else None
        # Roll back the updates the deposed node had in flight -- only now,
        # with every surviving subscriber re-sourced from the new serving
        # node, so the rollback's repository deletes ship over the stream
        # and witness heaps stay positionally identical.
        with synchronized_call(self.clock, target.clock):
            summary["rolled_back_updates"] = \
                target.dlfm.rollback_inherited_updates(inherited_sync)
            target.dlfm.repository.db.wal.flush()
        summary.update({"promoted": True, "epoch": epoch,
                        "serving": target_name})
        return summary

    # ------------------------------------------------------------------- rejoin --
    def rejoin(self, node_name: str) -> dict:
        """Re-admit a recovered deposed node as a witness subscriber.

        Fast path: the node subscribes to the current serving node's WAL
        stream at the LSN recorded when it was deposed -- its own
        last-applied point in the serving lineage -- and catches up by
        shipping only the records it missed (plus a content delta for files
        ingested while it was gone).  No snapshot resync.  The fallback
        snapshot path runs only when the deposed node's durable state
        diverged from the serving lineage.
        """

        node = self.nodes[node_name]
        if node_name == self.serving_name:
            raise ReplicationError(
                f"node {node_name!r} is serving shard {self.name!r}; "
                f"there is nothing to rejoin")
        if not node.running:
            raise ReplicationError(
                f"cannot rejoin {node_name!r} to shard {self.name!r}: "
                f"the node is down (recover it first)")
        if node_name in self._streams:
            return {"rejoined": False, "already_subscribed": True}
        if not self.serving.running:
            raise ReplicationError(
                f"cannot rejoin {node_name!r} to shard {self.name!r}: "
                f"serving node {self.serving_name!r} is down")
        base = self._rejoin_base.get(node_name)
        self._daemons[node_name].start()
        shipper = self._subscribe(node_name, base=base)
        if base is None:
            summary = self._resync_subscriber(node_name)
            return {"rejoined": True, "mode": "snapshot", **summary}
        rendezvous(self.clock, self.serving.clock, node.clock)
        before = shipper.shipped_records
        # The flush listener ships the whole missed suffix; the explicit
        # ship() only mops up if nothing needed flushing.
        self.serving.dlfm.repository.db.wal.flush()
        shipper.ship()
        shipped = shipper.shipped_records - before
        restored_files = self._mirror_missing_content(node)
        rebind = node.dlfm.replica_rebind()
        rendezvous(self.clock, self.serving.clock, node.clock)
        self.reversed_catchups += 1
        return {"rejoined": True, "mode": "reversed-ship",
                "from_lsn": base.value, "caught_up_records": shipped,
                "mirrored_files": restored_files, **rebind}

    # ----------------------------------------------------------------- fail-back --
    def fail_back(self) -> dict:
        """Return the serving lease to the home primary.

        The recovered ex-primary first rejoins as a witness (reversed-ship
        catch-up from its last-applied LSN; snapshot fallback on
        divergence), then the lease rotates back under a fence and the
        ex-witness resubscribes to the home primary's stream.
        """

        primary = self.primary
        if not primary.running:
            raise ReplicationError(
                f"cannot fail shard {self.name!r} back: primary "
                f"{primary.name!r} has not recovered")
        if not self.failed_over:
            return {"serving": self.home_primary, "epoch": self.epoch,
                    "failed_back": False}
        catch_up = None
        if self.home_primary not in self._streams:
            catch_up = self.rejoin(self.home_primary)
        summary = self.promote_to(self.home_primary)
        summary["failed_back"] = True
        if catch_up is not None:
            summary["rejoin"] = catch_up
        return summary

    # -------------------------------------------------------------------- resync --
    def _resync_subscriber(self, node_name: str) -> dict:
        """Snapshot catch-up of one subscriber from the serving repository.

        The heavyweight fallback: a catalog snapshot copy plus a cursor
        reset restores the invariant that subscriber heaps mirror the
        serving node's row ids exactly.  Used when a witness lost its
        replica state (its redo bypasses its own WAL by design) or a
        deposed node's durable state diverged from the serving lineage.
        """

        serving = self.serving
        if not serving.running:
            # A crashed node's catalog was reset by the crash; copying it
            # would destroy the subscriber's (possibly only) replica state.
            raise ReplicationError(
                f"cannot resync shard {self.name!r} from crashed primary "
                f"{serving.name!r}; recover it first")
        node = self.nodes[node_name]
        shipper = self._streams[node_name]
        # A full resync is a barrier across the pair (and its initiator).
        rendezvous(self.clock, serving.clock, node.clock)
        db = serving.dlfm.repository.db
        shipper.pause()
        db.wal.flush()
        node.dlfm.replica.reset_from_snapshot(db.catalog.snapshot(),
                                              db.wal.flushed_lsn)
        self._mirror_missing_content(node)
        rebind = node.dlfm.replica_catch_up({})
        shipper.cursor = db.wal.flushed_lsn
        shipper.resume()
        self._synced[node_name] = True
        self.full_resyncs += 1
        rendezvous(self.clock, serving.clock, node.clock)
        return {"resynced": True, **rebind}

    def resync(self) -> dict:
        """Snapshot-resync every running subscriber from the serving node."""

        if not self.serving.running:
            raise ReplicationError(
                f"cannot resync shard {self.name!r} from crashed primary "
                f"{self.serving_name!r}; recover it first")
        results = {}
        for node_name in list(self._streams):
            if self.nodes[node_name].running:
                results[node_name] = self._resync_subscriber(node_name)
        if len(results) == 1:
            return next(iter(results.values()))
        return {"resynced": True, "nodes": results}

    # ------------------------------------------------------------ witness faults --
    def crash_witness(self, witness_name: str | None = None) -> None:
        name = witness_name or self.witness.name
        self._daemons[name].stop()
        self.nodes[name].crash()
        self._synced[name] = False

    def recover_witness(self, witness_name: str | None = None) -> dict:
        """Restart a witness and, when the serving node is up, resync it.

        With the serving node also down there is nothing safe to resync
        from; the witness comes back empty-handed (its applied state
        bypassed its own WAL by design) and catches up once the serving
        node recovers.  A crashed *serving* witness recovers like any
        primary: from its own WAL and the promotion-time checkpoint.
        """

        name = witness_name or self.witness.name
        node = self.nodes[name]
        summary = node.recover()
        if name == self.serving_name:
            return summary
        self._daemons[name].start()
        if name not in self._streams:
            if self.serving.running:
                summary["resync"] = self.rejoin(name)
            else:
                summary["resync"] = {"resynced": False,
                                     "deferred": "primary is down"}
            return summary
        if self.serving.running:
            summary["resync"] = self._resync_subscriber(name)
        else:
            summary["resync"] = {"resynced": False,
                                 "deferred": "primary is down"}
        return summary

    # ------------------------------------------------------------------- status --
    @property
    def shipped_records(self) -> int:
        return self._retired_shipped + sum(shipper.shipped_records
                                           for shipper in self._streams.values())

    @property
    def ship_errors(self) -> int:
        return self._retired_ship_errors + sum(shipper.ship_errors
                                               for shipper in self._streams.values())

    def status(self) -> dict:
        home_witness = self.witness.name
        home_stream = self._streams.get(home_witness)
        status = {
            "serving": self.serving_name,
            "epoch": self.epoch,
            "failed_over": self.failed_over,
            "roles": self.roles(),
            "shipped_records": self.shipped_records,
            "ship_errors": self.ship_errors,
            "mirror_misses": self.mirror_misses,
            "witness_synced": bool(self._synced.get(home_witness)),
            "lag": home_stream.lag() if home_stream is not None else 0,
            "full_resyncs": self.full_resyncs,
            "reversed_catchups": self.reversed_catchups,
        }
        applier = self.witness.dlfm.replica
        if applier is not None:
            status.update(applier.status())
        return status
