"""Shard replication: WAL-stream shipping, witness replicas and failover.

The paper's architecture leaves every linked file under exactly one DLFM, so
a file-server crash makes that shard's files unreadable until recovery.
This module adds a *primary/witness* replication scheme per shard:

* :class:`WalShipper` streams the primary DLFM repository's **durable** WAL
  records to the witness over a daemon channel
  (:class:`~repro.datalinks.dlfm.daemons.ReplicaDaemon`), triggered by the
  repository WAL's flush hook -- only flushed records ship, so the witness
  can never hold a transaction the primary could lose in a crash; shipping
  is a *pipelined* send in simulated time (the witness applies batches on
  its own clock domain; the primary pays only the enqueue cost), so
  replication overlaps the primary's foreground work;
* :class:`ReplicaApplier` applies the shipped stream on the witness:
  committed transactions are redone into the witness repository, aborted
  ones are dropped, and transactions that shipped a PREPARE vote but no
  outcome are kept *in doubt* until promotion resolves them from the host
  database's durable outcome (two-phase commit across a failover);
* :class:`EpochRegistry` / :class:`EpochGuard` implement fencing: each
  shard has a monotonically increasing epoch and exactly one serving node;
  promotion bumps the epoch, so a recovered ex-primary fails every token
  validation and open upcall with
  :class:`~repro.errors.FencedNodeError` instead of serving stale tokens;
* :class:`ReplicatedShard` pairs one primary file server with its witness:
  file-content mirroring at ingest, promotion (catch-up, in-doubt
  resolution, inode/ownership rebinding, fencing), fail-back with a full
  resync, and crash fault injection through ``failpoints``.

Failpoints fire at every replication step so the crash-matrix tests can
inject a primary crash mid-protocol: ``replicate:ship`` (before a WAL batch
leaves the primary), ``replicate:apply`` (before the witness applies a
batch), ``replicate:promote`` / ``replicate:catchup`` / ``replicate:fence``
(inside promotion, in that order).
"""

from __future__ import annotations

from repro.datalinks.control_modes import ControlMode
from repro.errors import (
    FencedNodeError,
    FileSystemError,
    IPCError,
    ReplicationError,
)
from repro.ipc.channel import Channel
from repro.simclock import rendezvous, synchronized_call
from repro.storage.wal import LogRecordType
from repro.util.lsn import LSN


# ---------------------------------------------------------------------------
# epochs and fencing
# ---------------------------------------------------------------------------

class EpochRegistry:
    """The cluster manager's view: one epoch and one serving node per shard.

    Conceptually this lives beside the host database (the component that
    survives shard failures); promotions go through it so there is a single
    source of truth for "who serves shard S" and a recovered ex-primary can
    be told it no longer does.
    """

    def __init__(self):
        self._epochs: dict[str, int] = {}
        self._serving: dict[str, str] = {}

    def register(self, shard: str, node: str) -> int:
        """Grant the initial lease for *shard* to *node* (epoch 1)."""

        if shard not in self._epochs:
            self._epochs[shard] = 1
            self._serving[shard] = node
        return self._epochs[shard]

    def current_epoch(self, shard: str) -> int:
        return self._epochs.get(shard, 0)

    def serving_node(self, shard: str) -> str | None:
        return self._serving.get(shard)

    def promote(self, shard: str, node: str) -> int:
        """Make *node* the serving node of *shard*, bumping the epoch.

        Idempotent: promoting the node that already serves does not bump.
        """

        if shard not in self._epochs:
            return self.register(shard, node)
        if self._serving[shard] != node:
            self._epochs[shard] += 1
            self._serving[shard] = node
        return self._epochs[shard]

    def is_current(self, shard: str, node: str) -> bool:
        return self._serving.get(shard) == node


class EpochGuard:
    """One node's lease on its shard, checked before serving upcalls."""

    def __init__(self, registry: EpochRegistry, shard: str, node: str):
        self.registry = registry
        self.shard = shard
        self.node = node

    @property
    def fenced(self) -> bool:
        return not self.registry.is_current(self.shard, self.node)

    def check(self) -> None:
        if self.fenced:
            raise FencedNodeError(
                f"node {self.node!r} was fenced: shard {self.shard!r} is served "
                f"by {self.registry.serving_node(self.shard)!r} at epoch "
                f"{self.registry.current_epoch(self.shard)}")


# ---------------------------------------------------------------------------
# witness-side apply
# ---------------------------------------------------------------------------

_DATA_RECORDS = (LogRecordType.INSERT, LogRecordType.UPDATE,
                 LogRecordType.DELETE, LogRecordType.CLR)


class ReplicaApplier:
    """Applies the primary's shipped WAL stream to the witness repository.

    Data records are buffered per transaction and redone only once the
    transaction's COMMIT arrives (the witness never exposes uncommitted
    primary state).  A transaction whose PREPARE shipped but whose outcome
    did not is held in doubt; :meth:`resolve_in_doubt` drives it to the
    coordinator's durable outcome during promotion.

    The witness repository's heaps mirror the primary's row ids exactly, so
    redo is positional; the one deliberate divergence is the ``ino`` column
    of ``linked_files``, which is rebound to the witness file system's inode
    numbers as rows arrive (the primary's inode numbers are meaningless on
    another node).
    """

    def __init__(self, database, files=None, failpoints: dict | None = None):
        self._db = database
        self._files = files
        self.failpoints = failpoints if failpoints is not None else {}
        self._pending: dict[int, list] = {}
        self._prepared: dict[int, int | None] = {}
        self.applied_lsn = LSN(0)
        self.applied_commits = 0
        self.applied_records = 0
        self.dropped_txns = 0

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    # ------------------------------------------------------------------ apply --
    def apply(self, records: list) -> dict:
        """Apply one shipped batch; returns counters for the daemon reply."""

        if records:
            self._fire("replicate:apply")
        commits = aborts = 0
        for record in records:
            if record.type in _DATA_RECORDS:
                self._pending.setdefault(record.txn_id, []).append(record)
            elif record.type is LogRecordType.PREPARE:
                self._prepared[record.txn_id] = record.extra.get("host_txn_id")
            elif record.type is LogRecordType.COMMIT:
                self._apply_txn(record.txn_id)
                commits += 1
            elif record.type is LogRecordType.ABORT:
                self._drop_txn(record.txn_id)
                aborts += 1
            elif record.type is LogRecordType.CREATE_TABLE:
                schema = record.extra["schema"]
                if not self._db.catalog.has_table(schema.name):
                    self._db.catalog.create_table(schema.copy())
            elif record.type is LogRecordType.DROP_TABLE:
                if self._db.catalog.has_table(record.table):
                    self._db.catalog.drop_table(record.table)
            if record.lsn > self.applied_lsn:
                self.applied_lsn = record.lsn
        return {"commits": commits, "aborts": aborts,
                "applied_lsn": self.applied_lsn.value,
                "pending_txns": len(self._pending)}

    def _apply_txn(self, txn_id: int) -> None:
        for record in self._pending.pop(txn_id, []):
            self._redo(record)
        self._prepared.pop(txn_id, None)
        self.applied_commits += 1

    def _drop_txn(self, txn_id: int) -> None:
        if self._pending.pop(txn_id, None) is not None:
            self.dropped_txns += 1
        self._prepared.pop(txn_id, None)

    def _redo(self, record) -> None:
        """Redo one data record into the witness heaps, maintaining indexes."""

        db = self._db
        if record.table is None or not db.catalog.has_table(record.table):
            return
        heap = db.catalog.heap(record.table)
        effective = record.type
        if record.type is LogRecordType.CLR:
            effective = LogRecordType(record.extra["redo_as"])
        after = dict(record.after) if record.after is not None else None
        is_link_row = record.table == "linked_files" and self._files is not None
        if after is not None and is_link_row:
            after["ino"] = self._local_ino(after["path"], record.rid)
        if effective in (LogRecordType.INSERT, LogRecordType.UPDATE):
            if heap.exists(record.rid):
                db.catalog.index_remove(record.table, heap.get(record.rid),
                                        record.rid)
                heap.update(record.rid, after)
            else:
                heap.insert(after, rid=record.rid)
            db.catalog.index_insert(record.table, after, record.rid)
            if is_link_row:
                self._constrain_local_file(after)
        elif effective is LogRecordType.DELETE:
            if heap.exists(record.rid):
                before = heap.get(record.rid)
                db.catalog.index_remove(record.table, before, record.rid)
                heap.delete(record.rid)
                if is_link_row:
                    self._release_local_file(before)
        self.applied_records += 1
        db._charge("row_write")

    def _constrain_local_file(self, row: dict) -> None:
        """Apply the link's access constraints to the mirrored copy.

        The link ran on the primary, so its ownership takeover / read-only
        marking never touched this node's files -- without this, a bare URL
        read through the witness would bypass the token checks that guard
        the primary's copy.
        """

        path = row["path"]
        if not self._files.exists(path):
            return
        mode = ControlMode.from_string(row["control_mode"])
        if mode.takes_over_on_link:
            self._files.take_over(path, mode=0o400)
        elif mode.made_read_only_on_link:
            attrs = self._files.stat(path)
            if attrs.mode & 0o222:
                self._files.chmod(path, attrs.mode & ~0o222)

    def _release_local_file(self, row: dict) -> None:
        """Undo the local constraints when an unlink replicates over."""

        path = row["path"]
        if not self._files.exists(path):
            return
        if row.get("on_unlink") == "DELETE":
            self._files.unlink(path)
            return
        mode = ControlMode.from_string(row["control_mode"])
        if mode.takes_over_on_link or mode.made_read_only_on_link:
            self._files.restore_ownership(path, row["original_uid"],
                                          row["original_gid"],
                                          row["original_mode"])

    def _local_ino(self, path: str, rid: int) -> int:
        """The witness inode for *path*, or a placeholder while it is absent.

        Keeping the primary's inode would eventually collide with a real
        witness inode in the unique ``linked_files_ino`` index; ``-rid`` is
        negative (no real inode is) and unique per row.  Promotion rebinds
        the real inode once the content is restored.
        """

        try:
            return self._files.ino_of(path)
        except FileSystemError:
            return -rid

    # --------------------------------------------------------------- in doubt --
    def in_doubt_host_txns(self) -> list[int]:
        """Host transaction ids whose PREPARE shipped but whose outcome did not."""

        return sorted(host_txn_id for host_txn_id in self._prepared.values()
                      if host_txn_id is not None)

    def resolve_in_doubt(self, outcomes: dict) -> dict:
        """Drive shipped in-doubt transactions to the coordinator's outcome.

        ``outcomes`` maps host transaction id to ``"committed"`` /
        ``"aborted"`` / ``"unknown"``; anything but a durable commit is
        presumed aborted, exactly like a recovering participant.  Local
        transactions that never voted cannot have committed and are dropped.
        """

        committed, aborted = [], []
        for txn_id, host_txn_id in sorted(self._prepared.items()):
            if outcomes.get(host_txn_id) == "committed":
                self._apply_txn(txn_id)
                committed.append(host_txn_id)
            else:
                self._drop_txn(txn_id)
                aborted.append(host_txn_id if host_txn_id is not None else txn_id)
        for txn_id in list(self._pending):
            self._drop_txn(txn_id)
        return {"committed": committed, "aborted": aborted}

    # ----------------------------------------------------------------- resync --
    def reset_from_snapshot(self, snapshot: dict, state_lsn: LSN) -> None:
        """Replace the witness repository with a primary catalog snapshot."""

        self._db.catalog.load_snapshot(snapshot)
        self._db.catalog.rebuild_indexes()
        self._pending.clear()
        self._prepared.clear()
        self.applied_lsn = state_lsn

    def status(self) -> dict:
        return {
            "applied_lsn": self.applied_lsn.value,
            "applied_commits": self.applied_commits,
            "applied_records": self.applied_records,
            "pending_txns": len(self._pending),
            "in_doubt": self.in_doubt_host_txns(),
        }


# ---------------------------------------------------------------------------
# primary-side shipping
# ---------------------------------------------------------------------------

class WalShipper:
    """Streams the primary repository's durable WAL records to the witness.

    Registered as a flush listener on the primary repository's WAL, so
    shipping is continuous: every log force (commit, group-commit drain,
    prepare vote) pushes the newly durable suffix through the replica
    daemon channel.  A witness that is down does not stall the primary --
    the cursor simply stops advancing and the records ship on the next
    successful flush or an explicit :meth:`ship` (the *replica lag* the
    failover tests exercise).
    """

    def __init__(self, repository, channel: Channel,
                 failpoints: dict | None = None):
        self._repository = repository
        self._channel = channel
        self.failpoints = failpoints if failpoints is not None else {}
        self.cursor: LSN = repository.durable_lsn()
        self.paused = False
        self.shipped_records = 0
        self.ship_errors = 0
        repository.add_wal_listener(self._on_flush)

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    def _on_flush(self, wal) -> None:
        if self.paused:
            return
        try:
            self.ship()
        except IPCError:
            # The witness is unreachable; accumulate lag, do not fail the
            # primary's commit.
            self.ship_errors += 1

    def ship(self) -> int:
        """Ship every durable record past the cursor; returns how many."""

        records = self._repository.wal_records_since(self.cursor)
        if not records:
            return 0
        self._fire("replicate:ship")
        # Pipelined: the primary does not wait for the witness to apply.
        self._channel.post("apply_wal", records=records)
        self.cursor = records[-1].lsn
        self.shipped_records += len(records)
        return len(records)

    def lag(self) -> int:
        """Durable primary records the witness has not received yet."""

        return len(self._repository.wal_records_since(self.cursor))

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def detach(self) -> None:
        self._repository.remove_wal_listener(self._on_flush)


# ---------------------------------------------------------------------------
# the replicated shard
# ---------------------------------------------------------------------------

class ReplicatedShard:
    """One shard's primary/witness pair plus the machinery between them."""

    def __init__(self, name: str, primary, witness, registry: EpochRegistry,
                 engine, clock=None):
        from repro.datalinks.dlfm.daemons import ReplicaDaemon

        self.name = name
        self.primary = primary
        self.witness = witness
        self.registry = registry
        self.engine = engine
        self.clock = clock
        #: Fault-injection hooks shared by shipper, applier and promotion:
        #: ``replicate:ship``, ``replicate:apply``, ``replicate:promote``,
        #: ``replicate:catchup``, ``replicate:fence``.
        self.failpoints: dict = {}
        registry.register(name, primary.name)
        primary.dlfm.set_fencing(EpochGuard(registry, name, primary.name))
        witness.dlfm.set_fencing(EpochGuard(registry, name, witness.name))
        self.applier = witness.dlfm.enable_replica_mode(failpoints=self.failpoints)
        # The replica daemon runs on the witness node; the shipper sends
        # from the primary node.  ``clock`` (the deployment/host domain) is
        # kept for timing control-plane operations like promotion.
        self.replica_daemon = ReplicaDaemon(witness.dlfm, witness.clock)
        channel = Channel(self.replica_daemon, primary.clock,
                          latency_primitive="db_dlfm_message",
                          sender=f"wal-ship:{name}")
        self.shipper = WalShipper(primary.dlfm.repository, channel,
                                  failpoints=self.failpoints)
        self.mirror_misses = 0
        # A witness crash loses its applied state (redo bypasses its own
        # WAL by design); until a resync completes it must not be promoted.
        self._witness_synced = True

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    # -------------------------------------------------------------------- roles --
    @property
    def serving_name(self) -> str:
        return self.registry.serving_node(self.name)

    @property
    def serving(self):
        """The file server currently holding the shard's serving lease."""

        if self.serving_name == self.witness.name:
            return self.witness
        return self.primary

    @property
    def failed_over(self) -> bool:
        return self.serving_name != self.primary.name

    @property
    def epoch(self) -> int:
        return self.registry.current_epoch(self.name)

    # ---------------------------------------------------------------- mirroring --
    def mirror_file(self, path: str, content: bytes, cred) -> None:
        """Copy a just-ingested file to the witness (same path and owner).

        Runs below DLFS (the DLFM-privileged path) so mirroring never
        recurses into DataLinks interception on the witness.  A crashed
        witness misses the mirror (counted, like a missed WAL shipment);
        promotion later restores what it can from the shared archive.
        """

        if not self.witness.running:
            self.mirror_misses += 1
            return
        # Synchronous mirror: the ingest path waits for the witness copy
        # (that durability is exactly why promotion can serve the content),
        # so the witness domain syncs up and the caller merges back after.
        with synchronized_call(self.clock, self.witness.clock):
            lfs = self.witness.raw_lfs
            root = self.witness.files.dlfm_cred
            directory = path.rsplit("/", 1)[0] or "/"
            if directory != "/":
                lfs.makedirs(directory, root)
                lfs.chown(directory, cred.uid, cred.gid, root)
            lfs.write_file(path, content, root, create=True)
            lfs.chown(path, cred.uid, cred.gid, root)

    # ----------------------------------------------------------------- failover --
    def promote(self) -> dict:
        """Fail the shard over to the witness.

        Steps (each behind a failpoint): stop consuming the dead primary's
        stream, run witness catch-up -- resolve shipped in-doubt
        transactions from the host database's durable outcome, rebind
        inodes/ownership of linked files -- and finally bump the epoch so
        the ex-primary is fenced.  Idempotent: re-promoting a shard that
        already failed over only re-runs catch-up.
        """

        if not self.witness.running:
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{self.witness.name!r} is down (recover it first)")
        if not self._witness_synced:
            raise ReplicationError(
                f"cannot promote shard {self.name!r}: witness "
                f"{self.witness.name!r} lost its replica state and has not "
                f"resynced from the primary")
        self._fire("replicate:promote")
        # Promotion is driven by the cluster manager beside the host
        # database: the witness syncs up to the order's send time, catch-up
        # runs on the witness's own clock domain, and the manager waits for
        # completion (that is the failover latency experiments measure).
        with synchronized_call(self.clock, self.witness.clock):
            self.shipper.pause()
            self._fire("replicate:catchup")
            outcomes = self.engine.host_transaction_outcomes(
                self.applier.in_doubt_host_txns())
            summary = self.witness.dlfm.replica_catch_up(outcomes)
            self._fire("replicate:fence")
            epoch = self.registry.promote(self.name, self.witness.name)
        summary.update({"promoted": True, "epoch": epoch,
                        "serving": self.witness.name})
        return summary

    def fail_back(self) -> dict:
        """Return the shard to a recovered primary after a full resync."""

        if not self.primary.running:
            raise ReplicationError(
                f"cannot fail shard {self.name!r} back: primary "
                f"{self.primary.name!r} has not recovered")
        summary = self.resync()
        epoch = self.registry.promote(self.name, self.primary.name)
        summary.update({"serving": self.primary.name, "epoch": epoch})
        return summary

    def resync(self) -> dict:
        """Full witness catch-up: re-seed from the primary repository.

        Used on fail-back and witness recovery, where the witness may hold
        local soft state (token/sync entries written while it served) or
        may have missed shipped batches; a snapshot copy plus a cursor
        reset restores the invariant that witness heaps mirror primary row
        ids exactly.
        """

        if not self.primary.running:
            # A crashed primary's catalog was reset by the crash; copying
            # it would destroy the witness's (possibly only) replica state.
            raise ReplicationError(
                f"cannot resync shard {self.name!r} from crashed primary "
                f"{self.primary.name!r}; recover it first")
        # A full resync is a barrier across the pair (and its initiator).
        rendezvous(self.clock, self.primary.clock, self.witness.clock)
        db = self.primary.dlfm.repository.db
        self.shipper.pause()
        db.wal.flush()
        self.applier.reset_from_snapshot(db.catalog.snapshot(),
                                         db.wal.flushed_lsn)
        rebind = self.witness.dlfm.replica_catch_up({})
        self.shipper.cursor = db.wal.flushed_lsn
        self.shipper.resume()
        self._witness_synced = True
        rendezvous(self.clock, self.primary.clock, self.witness.clock)
        return {"resynced": True, **rebind}

    # ------------------------------------------------------------ witness faults --
    def crash_witness(self) -> None:
        self.replica_daemon.stop()
        self.witness.crash()
        self._witness_synced = False

    def recover_witness(self) -> dict:
        """Restart the witness and, when the primary is up, resync from it.

        With the primary also down there is nothing safe to resync from;
        the witness comes back empty-handed (its applied state bypassed its
        own WAL by design) and catches up once the primary recovers.
        """

        summary = self.witness.recover()
        self.replica_daemon.start()
        if self.primary.running:
            summary["resync"] = self.resync()
        else:
            summary["resync"] = {"resynced": False,
                                 "deferred": "primary is down"}
        return summary

    # ------------------------------------------------------------------- status --
    def status(self) -> dict:
        return {
            "serving": self.serving_name,
            "epoch": self.epoch,
            "failed_over": self.failed_over,
            "shipped_records": self.shipper.shipped_records,
            "ship_errors": self.shipper.ship_errors,
            "mirror_misses": self.mirror_misses,
            "witness_synced": self._witness_synced,
            "lag": self.shipper.lag(),
            **self.applier.status(),
        }
