"""The DataLinks engine: the host-DBMS side of DataLinks.

The engine extends the host database with DATALINK awareness:

* INSERT/UPDATE/DELETE statements that touch DATALINK columns drive link and
  unlink operations at the responsible file server's DLFM *inside the same
  transaction* (the DLFM branch is a sub-transaction, committed through
  two-phase commit with the host database as coordinator);
* SELECTing a DATALINK value can embed a read or write access token in the
  returned URL (Section 4.1);
* when a managed file update commits, the engine updates registered metadata
  columns (size, modification time) of the rows referencing that file in the
  same transaction as the DLFM's close processing (Section 4.3).

Scale-out additions (beyond the paper):

* **batched link pipelines** -- multi-row DML collects link/unlink work per
  file server and ships it as one IPC message per server
  (:meth:`DataLinksEngine.insert_many`, and batched unlinks inside
  ``update``/``delete``) instead of one round trip per row;
* **group commit** -- :meth:`DataLinksEngine.commit_group` resolves a batch
  of host transactions with one prepare and one commit message per enlisted
  server and a single host log force
  (:meth:`~repro.storage.database.Database.commit_many`);
* **failpoints** -- named crash-injection hooks inside the two-phase commit
  so the crash-matrix tests can stop the coordinator at every protocol step
  (:attr:`DataLinksEngine.failpoints`);
* **clock-domain awareness** -- link/unlink batches are *pipelined* sends
  (the enlisted shard does the work on its own clock domain while the host
  keeps executing SQL), and the prepare/commit fan-outs run inside an
  overlap window on the host's clock, so a transaction enlisting N shards
  pays the slowest participant instead of the sum of all participants (see
  :mod:`repro.simclock`).  Every engine entry point executes on the *host*
  domain: a session bound to a client clock domain barriers with the host
  (:func:`repro.simclock.synchronized_call`) around each SQL call, so
  concurrent clients serialize here exactly where a shared coordinator
  would make them -- their client-side fan-out (reads, uploads, think
  time) runs un-barriered on their own domains;
* **host-side token cache** -- :meth:`DataLinksEngine.enable_token_cache`
  lets repeated ``get_datalink`` calls for the same (path, access) reuse a
  still-live token instead of regenerating the HMAC, with hit-rate counters
  (the first slice of the read-caching roadmap item).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, options_of_column
from repro.datalinks.dlfm.daemons import DLFMConnection, MainDaemon
from repro.datalinks.tokens import TokenCache, TokenManager, TokenType
from repro.errors import (
    ControlModeError,
    DataLinksError,
    IPCError,
    PlacementEpochError,
)
from repro.simclock import SimClock
from repro.storage.database import Database
from repro.storage.transaction import Transaction
from repro.storage.values import DataType
from repro.util.lsn import LSN
from repro.util.urls import format_url, parse_url

#: Gates the vectorized token-handout fast path
#: (:meth:`DataLinksEngine.get_datalink_many`).  ``False`` replays the batch
#: through the scalar :meth:`~DataLinksEngine.get_datalink` per row; both
#: modes produce bit-identical token streams and simulated charges (see
#: tests/test_bulk_fastpaths.py).
BULK_TOKEN_HANDOUT = True


@dataclass
class HostTransaction:
    """A host transaction plus the set of file servers enlisted in it."""

    txn: Transaction
    servers: set[str] = field(default_factory=set)

    @property
    def txn_id(self) -> int:
        return self.txn.txn_id


@dataclass
class _FileServerEntry:
    name: str
    manager: object
    connection: DLFMConnection
    tokens: TokenManager


@dataclass
class _MetadataRule:
    table: str
    column: str
    size_column: str | None
    mtime_column: str | None


class DataLinksEngine:
    """DATALINK processing inside the host database."""

    def __init__(self, host_db: Database, clock: SimClock | None = None,
                 default_token_ttl: float = 60.0):
        self.db = host_db
        self.clock = clock
        self.default_token_ttl = default_token_ttl
        self._servers: dict[str, _FileServerEntry] = {}
        self._metadata_rules: list[_MetadataRule] = []
        #: Fault-injection hooks: ``{point_name: callable}``.  The commit
        #: protocol fires points named ``commit:begin``,
        #: ``commit:prepared:<server>``, ``commit:before_host_commit``,
        #: ``commit:mid_flush`` (COMMIT appended, log not yet forced),
        #: ``commit:after_host_commit`` and ``commit:committed:<server>``
        #: (``group:*`` equivalents for group commit); a hook that raises
        #: simulates a coordinator crash at that step.
        self.failpoints: dict = {}
        #: Optional host-side token cache (see :meth:`enable_token_cache`).
        self.token_cache: TokenCache | None = None
        #: Optional replication-aware router (see :meth:`set_router`).
        self.router = None

    def _fire(self, point: str) -> None:
        hook = self.failpoints.get(point)
        if hook is not None:
            hook()

    @contextlib.contextmanager
    def _overlap(self):
        """Scatter-gather window on the host clock for participant fan-outs."""

        if self.clock is None:
            yield
            return
        with self.clock.overlap():
            yield

    # -------------------------------------------------------------- token cache --
    def enable_token_cache(self, min_remaining_fraction: float = 0.5) -> TokenCache:
        """Cache handed-out tokens so repeated ``get_datalink`` calls for the
        same (path, access) skip HMAC generation while the token is live.

        A cached token is reused only while at least
        ``min_remaining_fraction`` of the *requested* TTL remains, so a
        caller never receives a token about to expire.  Returns the cache
        (its ``hits``/``misses`` counters feed experiment reporting).
        """

        self.token_cache = TokenCache(
            self.clock, min_remaining_fraction=min_remaining_fraction)
        return self.token_cache

    def disable_token_cache(self) -> None:
        self.token_cache = None

    def token_cache_stats(self) -> dict:
        if self.token_cache is None:
            return {"enabled": False}
        return {"enabled": True, **self.token_cache.stats()}

    # ------------------------------------------------------------------ wiring --
    def register_file_server(self, name: str, manager, main_daemon: MainDaemon) -> None:
        """Register a file server: open a connection to its DLFM and share keys.

        The connection's message envelopes are stamped with the placement
        epoch the engine routed by, so a DLFM holding a newer map can
        refuse (and redirect) requests sent under a stale one.
        """

        connection = DLFMConnection(main_daemon, self.clock,
                                    client_name=f"engine:{name}",
                                    epoch_provider=self._placement_epoch)
        tokens = TokenManager(manager.token_secret, self.clock,
                              default_ttl=self.default_token_ttl)
        self._servers[name] = _FileServerEntry(name=name, manager=manager,
                                               connection=connection, tokens=tokens)
        manager.attach_engine(self)

    def file_server_names(self) -> list[str]:
        return sorted(self._servers)

    def set_router(self, router) -> None:
        """Route DLFM traffic through a replication-aware router.

        DATALINK URLs name the *logical* shard; with a router attached,
        every connection lookup resolves in two steps: the URL's
        ``(server, path)`` pair maps to the prefix's **current owner
        shard** (:meth:`~repro.datalinks.routing.ReplicationRouter.owner_shard`
        -- the epoched placement map, so a rebalanced prefix's traffic
        follows the move), and the owner maps to its serving node
        (:meth:`~repro.datalinks.routing.ReplicationRouter.writable_node`
        -- so a failed-over shard's traffic reaches the promoted witness).
        A transaction whose branch was taken on a node deposed before the
        prepare fan-out aborts cleanly: the new serving node has no branch
        for it and votes no.  Should a DLFM still refuse a dispatch with a
        :class:`~repro.errors.PlacementEpochError` (the engine's map was
        stale), the dispatch is redirected once to the owner the error
        names and counted in the router's ``stale_epoch_redirects``.
        """

        self.router = router

    def _placement_epoch(self) -> int | None:
        """The placement epoch stamped into DLFM message envelopes."""

        return self.router.placement.epoch if self.router is not None else None

    def _owner(self, server: str, path: str) -> str:
        """The shard currently owning *path* (identity without a router)."""

        if self.router is None:
            return server
        return self.router.owner_shard(server, path)

    def _entry(self, server: str) -> _FileServerEntry:
        name = self.router.writable_node(server) if self.router is not None \
            else server
        try:
            return self._servers[name]
        except KeyError:
            raise DataLinksError(f"no file server registered under {server!r}") from None

    def state_identifier(self) -> LSN:
        return self.db.state_identifier()

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        """Declare which columns hold the auto-maintained file metadata."""

        self._metadata_rules.append(_MetadataRule(table, column, size_column, mtime_column))

    # ------------------------------------------------------------- transactions --
    def begin(self) -> HostTransaction:
        return HostTransaction(txn=self.db.begin())

    def commit(self, host_txn: HostTransaction) -> LSN:
        """Two-phase commit across the host database and every enlisted DLFM."""

        if self.clock is not None and host_txn.servers:
            self.clock.charge("datalink_engine_dispatch")
        self._fire("commit:begin")
        # The prepare fan-out overlaps across participants: every vote
        # request departs at the window's start and the coordinator waits
        # for the slowest vote, not the sum of all votes.
        with self._overlap():
            for server in sorted(host_txn.servers):
                if not self._entry(server).connection.prepare(host_txn.txn_id):
                    # The server is enlisted, so it once held a branch; a
                    # missing branch means the DLFM crashed and lost it.
                    # Refuse to commit a transaction whose file-side effects
                    # are gone.
                    raise DataLinksError(
                        f"file server {server!r} lost the branch of transaction "
                        f"{host_txn.txn_id} (restarted?); the transaction must abort")
                self._fire(f"commit:prepared:{server}")
        self._fire("commit:before_host_commit")
        state_id = self.db.commit(host_txn.txn)
        self._fire("commit:mid_flush")
        if host_txn.servers:
            # The coordinator's COMMIT record must be durable before any
            # participant commits; under group commit this force piggybacks
            # every pending commit in the window.
            self.db.force_log()
        self._fire("commit:after_host_commit")
        with self._overlap():
            for server in sorted(host_txn.servers):
                self._entry(server).connection.commit(host_txn.txn_id)
                self._fire(f"commit:committed:{server}")
        return state_id

    def commit_group(self, host_txns: list[HostTransaction]) -> LSN:
        """Group commit: resolve a whole batch of host transactions at once.

        One ``prepare_many`` and one ``commit_many`` message go to each
        enlisted file server (covering every transaction in the batch that
        touched it), and a single host log force covers all the COMMIT
        records -- the WAL group commit of the sharded deployment.
        """

        if not host_txns:
            return self.db.state_identifier()
        if self.clock is not None:
            self.clock.charge("datalink_engine_dispatch")
        by_server: dict[str, list[int]] = {}
        for host_txn in host_txns:
            for server in host_txn.servers:
                by_server.setdefault(server, []).append(host_txn.txn_id)
        self._fire("group:begin")
        with self._overlap():
            for server in sorted(by_server):
                votes = self._entry(server).connection.prepare_many(by_server[server])
                if not all(votes):
                    lost = [txn_id for txn_id, vote in zip(by_server[server], votes)
                            if not vote]
                    raise DataLinksError(
                        f"file server {server!r} lost the branches of transactions "
                        f"{lost} (restarted?); the commit group must abort")
                self._fire(f"group:prepared:{server}")
        self._fire("group:before_host_commit")
        state_id = self.db.commit_many([host_txn.txn for host_txn in host_txns])
        self._fire("group:after_host_commit")
        with self._overlap():
            for server in sorted(by_server):
                self._entry(server).connection.commit_many(by_server[server])
                self._fire(f"group:committed:{server}")
        return state_id

    def redrive_commit(self, host_txn: HostTransaction) -> None:
        """Re-send participant commits for a durably committed transaction.

        Used when a commit batch failed partway through its participant
        commits: the host outcome is already durable, so the surviving
        servers must commit (a missing branch is ignored -- it already
        committed) and unreachable servers are left to resolve their
        in-doubt branches from the host outcome during recovery.
        """

        with self._overlap():
            for server in sorted(host_txn.servers):
                try:
                    self._entry(server).connection.commit(host_txn.txn_id)
                except IPCError:
                    pass

    # ------------------------------------------------------- prefix hand-off --
    def rebalance_export(self, host_txn: HostTransaction, source: str,
                         prefix: str) -> dict:
        """Enlist *source* and hand the prefix's repository state off."""

        host_txn.servers.add(source)
        return self._entry(source).connection.rebalance_export(
            host_txn.txn_id, prefix)

    def rebalance_import(self, host_txn: HostTransaction, dest: str,
                         rows: list, versions: list) -> dict:
        """Enlist *dest* and adopt handed-off rows and version chains."""

        host_txn.servers.add(dest)
        return self._entry(dest).connection.rebalance_import(
            host_txn.txn_id, rows, versions)

    def abort(self, host_txn: HostTransaction) -> None:
        """Abort everywhere.  Unreachable file servers are tolerated: a
        crashed DLFM lost its volatile branch anyway, and a prepared branch
        it persisted is resolved by presumed abort during its recovery."""

        with self._overlap():
            for server in sorted(host_txn.servers):
                try:
                    self._entry(server).connection.abort(host_txn.txn_id)
                except IPCError:
                    pass
        if not host_txn.txn.is_finished:
            self.db.abort(host_txn.txn)

    # ------------------------------------------------- in-doubt resolution --
    def host_transaction_outcome(self, host_txn_id: int) -> str:
        """Durable outcome of a host transaction: committed/aborted/unknown.

        File servers call this (conceptually over the DBMS-DLFM connection)
        to resolve in-doubt branches after a crash.
        """

        return self.db.txn_outcome(host_txn_id)

    def host_transaction_outcomes(self, host_txn_ids) -> dict:
        """Durable outcomes for a batch of host transactions.

        One conceptual round trip instead of one per transaction: a
        promoted witness replica resolves the whole in-doubt portion of its
        shipped WAL stream with a single call during failover.
        """

        return {host_txn_id: self.db.txn_outcome(host_txn_id)
                for host_txn_id in host_txn_ids}

    def resolve_in_doubt(self) -> dict:
        """Resolve prepared DLFM branches after a coordinator failure.

        Call after the host database has recovered from a crash that
        interrupted a two-phase commit: every file server drives its prepared
        branches to the host's durable outcome (presumed abort when the host
        log has no COMMIT).  Returns per-server resolution summaries.
        """

        return {name: entry.manager.resolve_in_doubt()
                for name, entry in sorted(self._servers.items())}

    @contextlib.contextmanager
    def _auto(self, host_txn: HostTransaction | None):
        if host_txn is not None:
            yield host_txn
            return
        auto = self.begin()
        try:
            yield auto
        except Exception:
            self.abort(auto)
            raise
        else:
            self.commit(auto)

    # --------------------------------------------------------------------- DML --
    def insert(self, table: str, row: dict, host_txn: HostTransaction | None = None) -> int:
        """INSERT with link processing for every non-null DATALINK value."""

        with self._auto(host_txn) as active:
            rid = self.db.insert(table, row, active.txn)
            for column in self.db.catalog.schema(table).datalink_columns():
                url = row.get(column.name)
                if url:
                    self._link(active, column, url)
            return rid

    def insert_many(self, table: str, rows: list[dict],
                    host_txn: HostTransaction | None = None) -> list[int]:
        """Multi-row INSERT with pipelined link processing.

        The host rows are inserted as one multi-row statement and the link
        operations are collected per file server, then shipped as **one
        batched IPC message per enlisted server** instead of one round trip
        per row -- the batched link pipeline of the scale-out design.
        """

        with self._auto(host_txn) as active:
            rids = self.db.insert_many(table, rows, active.txn)
            links: dict[str, list[tuple[str, DatalinkOptions]]] = {}
            for column in self.db.catalog.schema(table).datalink_columns():
                options = options_of_column(column)
                for row in rows:
                    url = row.get(column.name)
                    if url:
                        parsed = parse_url(url)
                        owner = self._owner(parsed.server, parsed.path)
                        links.setdefault(owner, []).append(
                            (parsed.path, options))
            self._ship_batches(active, {}, links)
            return rids

    def delete(self, table: str, where, host_txn: HostTransaction | None = None) -> int:
        """DELETE with unlink processing for every referenced file.

        Unlinks are batched per file server: a multi-row DELETE pays one IPC
        round trip per enlisted server, not one per row.
        """

        with self._auto(host_txn) as active:
            schema = self.db.catalog.schema(table)
            doomed = self.db.select(table, where, active.txn, for_update=True)
            count = self.db.delete(table, where, active.txn)
            unlinks: dict[str, list[str]] = {}
            for row in doomed:
                for column in schema.datalink_columns():
                    url = row.get(column.name)
                    if url:
                        parsed = parse_url(url)
                        owner = self._owner(parsed.server, parsed.path)
                        unlinks.setdefault(owner, []).append(parsed.path)
            self._ship_batches(active, unlinks, {})
            return count

    def update(self, table: str, where, changes: dict,
               host_txn: HostTransaction | None = None) -> int:
        """UPDATE; changing a DATALINK value unlinks the old file and links the new.

        Link/unlink work is batched per file server (unlinks shipped before
        links, statement-at-a-time), so a multi-row UPDATE costs at most two
        IPC round trips per enlisted server.
        """

        with self._auto(host_txn) as active:
            schema = self.db.catalog.schema(table)
            datalink_changes = [column for column in schema.datalink_columns()
                                if column.name in changes]
            before = []
            if datalink_changes:
                before = self.db.select(table, where, active.txn, for_update=True)
            count = self.db.update(table, where, changes, active.txn)
            unlinks: dict[str, list[str]] = {}
            links: dict[str, list[tuple[str, DatalinkOptions]]] = {}
            for column in datalink_changes:
                new_url = changes.get(column.name)
                options = options_of_column(column)
                for row in before:
                    old_url = row.get(column.name)
                    if old_url == new_url:
                        continue
                    if old_url:
                        parsed = parse_url(old_url)
                        owner = self._owner(parsed.server, parsed.path)
                        unlinks.setdefault(owner, []).append(parsed.path)
                    if new_url:
                        parsed = parse_url(new_url)
                        owner = self._owner(parsed.server, parsed.path)
                        links.setdefault(owner, []).append(
                            (parsed.path, options))
            self._ship_batches(active, unlinks, links)
            return count

    def _ship_batches(self, active: HostTransaction,
                      unlinks: dict[str, list[str]],
                      links: dict[str, list[tuple[str, DatalinkOptions]]]) -> None:
        """Enlist each server and ship its unlink batch, then its link batch."""

        for server in sorted(set(unlinks) | set(links)):
            self._dispatch_links(active, server, unlinks.get(server),
                                 links.get(server))

    def _dispatch_links(self, active: HostTransaction, server: str,
                        unlink_paths: list[str] | None,
                        link_items: list[tuple[str, DatalinkOptions]] | None,
                        *, redirected: bool = False) -> None:
        """Ship one server's link/unlink work, redirecting once on a stale map.

        A DLFM that no longer owns the batch's prefix refuses with a
        :class:`~repro.errors.PlacementEpochError` naming the current
        owner; when the whole batch belongs to that prefix the dispatch is
        re-sent there (redirect-and-retry, counted in the router's
        ``stale_epoch_redirects``).  Mixed-prefix batches re-raise: the
        statement aborts and the caller retries under the fresh map.

        The refused server is *not* enlisted on a redirect: the DLFM's
        placement check precedes branch creation, and a uniform-prefix
        refusal fires on the first item, so no branch exists there -- and
        an enlisted server without a branch would make the later prepare
        fan-out abort the whole transaction.  Every other outcome
        (success, partial failure) enlists, so 2PC resolution reaches any
        branch the dispatch may have created.
        """

        entry = self._entry(server)
        try:
            if unlink_paths:
                entry.connection.unlink_files(active.txn_id, unlink_paths)
            if link_items:
                entry.connection.link_files(active.txn_id, link_items)
        except PlacementEpochError as error:
            owner = error.owner
            paths = list(unlink_paths or []) + \
                [path for path, _ in (link_items or [])]
            if redirected or self.router is None or owner is None \
                    or owner == server \
                    or {self.router.prefix_of(path) for path in paths} \
                    != {error.prefix}:
                active.servers.add(server)
                raise
            self.router.stale_epoch_redirects += 1
            self._dispatch_links(active, owner, unlink_paths, link_items,
                                 redirected=True)
        except Exception:
            active.servers.add(server)
            raise
        else:
            active.servers.add(server)
            if self.router is not None:
                for path in list(unlink_paths or []) + \
                        [path for path, _ in (link_items or [])]:
                    self.router.note_write(path)

    def select(self, table: str, where=None, host_txn: HostTransaction | None = None,
               **kwargs) -> list[dict]:
        txn = host_txn.txn if host_txn is not None else None
        return self.db.select(table, where, txn, **kwargs)

    # ------------------------------------------------------------ token handout --
    def get_datalink(self, table: str, where, column: str, *, access: str = "read",
                     host_txn: HostTransaction | None = None,
                     ttl: float | None = None) -> str | None:
        """Retrieve a DATALINK value, embedding an access token when required.

        ``access`` is ``"read"`` or ``"write"``; requesting write access on a
        column whose control mode does not manage updates raises
        :class:`ControlModeError`, mirroring SQL errors in the prototype.
        """

        if self.clock is not None:
            self.clock.charge("datalink_engine_dispatch")
        txn = host_txn.txn if host_txn is not None else None
        row = self.db.select_one(table, where, txn)
        if row is None:
            return None
        schema_column = self.db.catalog.schema(table).column(column)
        if schema_column.dtype is not DataType.DATALINK:
            raise ControlModeError(f"column {column!r} is not a DATALINK column")
        url_text = row.get(column)
        if not url_text:
            return None
        options = options_of_column(schema_column)
        mode = options.control_mode
        parsed = parse_url(url_text)
        token = self._token_for(parsed.server, parsed.path, mode, access,
                                ttl if ttl is not None else options.token_ttl)
        return parsed.with_token(token).render()

    def get_datalink_many(self, table: str, wheres, column: str, *,
                          access: str = "read",
                          host_txn: HostTransaction | None = None,
                          ttl: float | None = None) -> list:
        """Mint a whole read plan's tokens as one vectorized handout.

        Semantically ``[self.get_datalink(table, where, column, ...) for
        where in wheres]`` -- and that scalar loop is exactly what runs when
        :data:`BULK_TOKEN_HANDOUT` is off.  The fast path hoists the
        per-call machinery out of the loop -- schema and option resolution,
        the router and server-entry lookups, the token-cache probe -- while
        keeping every per-row charge in scalar order, so the token stream
        and all simulated timestamps are bit-identical to the reference:
        handout is host-side SQL whose rows mint back to back, nothing
        between two rows touches any clock, which is what makes the hoist
        safe.
        """

        if not BULK_TOKEN_HANDOUT:
            return [self.get_datalink(table, where, column, access=access,
                                      host_txn=host_txn, ttl=ttl)
                    for where in wheres]
        clock = self.clock
        txn = host_txn.txn if host_txn is not None else None
        db = self.db
        router = self.router
        servers = self._servers
        token_cache = self.token_cache
        want_write = access == "write"
        schema_column = None
        is_datalink = False
        mode = None
        token_ttl = ttl
        results = []
        for where in wheres:
            if clock is not None:
                clock.charge("datalink_engine_dispatch")
            rows = db.select(table, where, txn)
            if not rows:
                results.append(None)
                continue
            if schema_column is None:
                schema_column = self.db.catalog.schema(table).column(column)
                is_datalink = schema_column.dtype is DataType.DATALINK
            if not is_datalink:
                raise ControlModeError(
                    f"column {column!r} is not a DATALINK column")
            url_text = rows[0].get(column)
            if not url_text:
                results.append(None)
                continue
            if mode is None:
                options = options_of_column(schema_column)
                mode = options.control_mode
                if token_ttl is None:
                    token_ttl = options.token_ttl
            parsed = parse_url(url_text)
            # ``_token_for`` inlined: owner-shard resolution, the server
            # entry, and the access checks in the scalar's exact order.
            server = parsed.server if router is None else \
                router.owner_shard(parsed.server, parsed.path)
            name = server if router is None else router.writable_node(server)
            try:
                entry = servers[name]
            except KeyError:
                raise DataLinksError(
                    f"no file server registered under {server!r}") from None
            if want_write:
                if not mode.supports_update:
                    raise ControlModeError(
                        f"files linked in {mode.value} mode cannot be updated "
                        f"through the database (write access is "
                        f"{'blocked' if mode.write_blocked else 'file-system controlled'})")
                token_type = TokenType.WRITE
            elif access != "read":
                raise ControlModeError(f"unknown access kind {access!r}")
            elif mode.requires_read_token:
                token_type = TokenType.READ
            else:
                results.append(parsed.with_token(None).render())
                continue
            path = parsed.path
            if token_cache is not None:
                token = token_cache.lookup(server, path, token_type,
                                           token_ttl)
                if token is None:
                    token = entry.tokens.generate(path, token_type, token_ttl)
                    token_cache.store(server, path, token_type, token_ttl,
                                      token)
            else:
                token = entry.tokens.generate(path, token_type, token_ttl)
            results.append(parsed.with_token(token).render())
        return results

    def _token_for(self, server: str, path: str, mode: ControlMode, access: str,
                   ttl: float) -> str | None:
        # Tokens must be signed with the secret of the node that will
        # validate them: the prefix's current owner (witnesses share their
        # primary's secret, so failover needs no re-signing; a rebalanced
        # prefix validates on the destination shard).
        server = self._owner(server, path)
        entry = self._entry(server)
        if access == "write":
            if not mode.supports_update:
                raise ControlModeError(
                    f"files linked in {mode.value} mode cannot be updated through "
                    f"the database (write access is "
                    f"{'blocked' if mode.write_blocked else 'file-system controlled'})")
            return self._generate_token(entry, server, path, TokenType.WRITE, ttl)
        if access != "read":
            raise ControlModeError(f"unknown access kind {access!r}")
        if mode.requires_read_token:
            return self._generate_token(entry, server, path, TokenType.READ, ttl)
        return None

    def _generate_token(self, entry: _FileServerEntry, server: str, path: str,
                        token_type: TokenType, ttl: float) -> str:
        """Generate a token, reusing a cached live one when caching is on."""

        if self.token_cache is not None:
            cached = self.token_cache.lookup(server, path, token_type, ttl)
            if cached is not None:
                return cached
        token = entry.tokens.generate(path, token_type, ttl)
        if self.token_cache is not None:
            self.token_cache.store(server, path, token_type, ttl, token)
        return token

    # ------------------------------------------------------- metadata maintenance --
    def update_file_metadata(self, server: str, path: str, size: int, mtime: float,
                             host_txn: HostTransaction) -> int:
        """Update registered size/mtime columns of rows referencing this file.

        *server* is the physical node whose close processing drives the
        update.  The referencing rows' URLs stay logical, so the match
        goes through the router: a URL names this node directly, or its
        owner shard's write traffic currently resolves here (a promoted
        witness after failover, the destination shard after a prefix
        rebalance).
        """

        def references(row, column: str) -> bool:
            url = row.get(column)
            if not url:
                return False
            parsed = parse_url(url)
            if parsed.path != path:
                return False
            if parsed.server == server:
                return True
            if self.router is None:
                return False
            owner = self.router.owner_shard(parsed.server, parsed.path)
            return self.router.writable_node(owner) == server

        touched = 0
        for rule in self._metadata_rules:
            changes = {}
            if rule.size_column:
                changes[rule.size_column] = int(size)
            if rule.mtime_column:
                changes[rule.mtime_column] = float(mtime)
            if not changes:
                continue
            touched += self.db.update(
                rule.table,
                lambda row, column=rule.column: references(row, column),
                changes, host_txn.txn)
        return touched

    # ------------------------------------------------------------- link plumbing --
    def _link(self, host_txn: HostTransaction, column, url: str) -> None:
        parsed = parse_url(url)
        options = options_of_column(column)
        owner = self._owner(parsed.server, parsed.path)
        self._dispatch_links(host_txn, owner, None, [(parsed.path, options)])

    def _unlink(self, host_txn: HostTransaction, url: str) -> None:
        parsed = parse_url(url)
        owner = self._owner(parsed.server, parsed.path)
        self._dispatch_links(host_txn, owner, [parsed.path], None)

    # --------------------------------------------------------------- convenience --
    def make_url(self, server: str, path: str) -> str:
        """Format a bare DATALINK URL for *path* on *server*."""

        return format_url(server, path)

    def options_for(self, table: str, column: str) -> DatalinkOptions:
        return options_of_column(self.db.catalog.schema(table).column(column))
