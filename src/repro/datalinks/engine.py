"""The DataLinks engine: the host-DBMS side of DataLinks.

The engine extends the host database with DATALINK awareness:

* INSERT/UPDATE/DELETE statements that touch DATALINK columns drive link and
  unlink operations at the responsible file server's DLFM *inside the same
  transaction* (the DLFM branch is a sub-transaction, committed through
  two-phase commit with the host database as coordinator);
* SELECTing a DATALINK value can embed a read or write access token in the
  returned URL (Section 4.1);
* when a managed file update commits, the engine updates registered metadata
  columns (size, modification time) of the rows referencing that file in the
  same transaction as the DLFM's close processing (Section 4.3).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, options_of_column
from repro.datalinks.dlfm.daemons import DLFMConnection, MainDaemon
from repro.datalinks.tokens import TokenManager, TokenType
from repro.errors import ControlModeError, DataLinksError
from repro.simclock import SimClock
from repro.storage.database import Database
from repro.storage.transaction import Transaction
from repro.storage.values import DataType
from repro.util.lsn import LSN
from repro.util.urls import format_url, parse_url


@dataclass
class HostTransaction:
    """A host transaction plus the set of file servers enlisted in it."""

    txn: Transaction
    servers: set[str] = field(default_factory=set)

    @property
    def txn_id(self) -> int:
        return self.txn.txn_id


@dataclass
class _FileServerEntry:
    name: str
    manager: object
    connection: DLFMConnection
    tokens: TokenManager


@dataclass
class _MetadataRule:
    table: str
    column: str
    size_column: str | None
    mtime_column: str | None


class DataLinksEngine:
    """DATALINK processing inside the host database."""

    def __init__(self, host_db: Database, clock: SimClock | None = None,
                 default_token_ttl: float = 60.0):
        self.db = host_db
        self.clock = clock
        self.default_token_ttl = default_token_ttl
        self._servers: dict[str, _FileServerEntry] = {}
        self._metadata_rules: list[_MetadataRule] = []

    # ------------------------------------------------------------------ wiring --
    def register_file_server(self, name: str, manager, main_daemon: MainDaemon) -> None:
        """Register a file server: open a connection to its DLFM and share keys."""

        connection = DLFMConnection(main_daemon, self.clock, client_name=f"engine:{name}")
        tokens = TokenManager(manager.token_secret, self.clock,
                              default_ttl=self.default_token_ttl)
        self._servers[name] = _FileServerEntry(name=name, manager=manager,
                                               connection=connection, tokens=tokens)
        manager.attach_engine(self)

    def file_server_names(self) -> list[str]:
        return sorted(self._servers)

    def _entry(self, server: str) -> _FileServerEntry:
        try:
            return self._servers[server]
        except KeyError:
            raise DataLinksError(f"no file server registered under {server!r}") from None

    def state_identifier(self) -> LSN:
        return self.db.state_identifier()

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        """Declare which columns hold the auto-maintained file metadata."""

        self._metadata_rules.append(_MetadataRule(table, column, size_column, mtime_column))

    # ------------------------------------------------------------- transactions --
    def begin(self) -> HostTransaction:
        return HostTransaction(txn=self.db.begin())

    def commit(self, host_txn: HostTransaction) -> LSN:
        """Two-phase commit across the host database and every enlisted DLFM."""

        if self.clock is not None and host_txn.servers:
            self.clock.charge("datalink_engine_dispatch")
        for server in sorted(host_txn.servers):
            self._entry(server).connection.prepare(host_txn.txn_id)
        state_id = self.db.commit(host_txn.txn)
        for server in sorted(host_txn.servers):
            self._entry(server).connection.commit(host_txn.txn_id)
        return state_id

    def abort(self, host_txn: HostTransaction) -> None:
        for server in sorted(host_txn.servers):
            self._entry(server).connection.abort(host_txn.txn_id)
        if not host_txn.txn.is_finished:
            self.db.abort(host_txn.txn)

    @contextlib.contextmanager
    def _auto(self, host_txn: HostTransaction | None):
        if host_txn is not None:
            yield host_txn
            return
        auto = self.begin()
        try:
            yield auto
        except Exception:
            self.abort(auto)
            raise
        else:
            self.commit(auto)

    # --------------------------------------------------------------------- DML --
    def insert(self, table: str, row: dict, host_txn: HostTransaction | None = None) -> int:
        """INSERT with link processing for every non-null DATALINK value."""

        with self._auto(host_txn) as active:
            rid = self.db.insert(table, row, active.txn)
            for column in self.db.catalog.schema(table).datalink_columns():
                url = row.get(column.name)
                if url:
                    self._link(active, column, url)
            return rid

    def delete(self, table: str, where, host_txn: HostTransaction | None = None) -> int:
        """DELETE with unlink processing for every referenced file."""

        with self._auto(host_txn) as active:
            schema = self.db.catalog.schema(table)
            doomed = self.db.select(table, where, active.txn, for_update=True)
            count = self.db.delete(table, where, active.txn)
            for row in doomed:
                for column in schema.datalink_columns():
                    url = row.get(column.name)
                    if url:
                        self._unlink(active, url)
            return count

    def update(self, table: str, where, changes: dict,
               host_txn: HostTransaction | None = None) -> int:
        """UPDATE; changing a DATALINK value unlinks the old file and links the new."""

        with self._auto(host_txn) as active:
            schema = self.db.catalog.schema(table)
            datalink_changes = [column for column in schema.datalink_columns()
                                if column.name in changes]
            before = []
            if datalink_changes:
                before = self.db.select(table, where, active.txn, for_update=True)
            count = self.db.update(table, where, changes, active.txn)
            for column in datalink_changes:
                new_url = changes.get(column.name)
                for row in before:
                    old_url = row.get(column.name)
                    if old_url == new_url:
                        continue
                    if old_url:
                        self._unlink(active, old_url)
                    if new_url:
                        self._link(active, column, new_url)
            return count

    def select(self, table: str, where=None, host_txn: HostTransaction | None = None,
               **kwargs) -> list[dict]:
        txn = host_txn.txn if host_txn is not None else None
        return self.db.select(table, where, txn, **kwargs)

    # ------------------------------------------------------------ token handout --
    def get_datalink(self, table: str, where, column: str, *, access: str = "read",
                     host_txn: HostTransaction | None = None,
                     ttl: float | None = None) -> str | None:
        """Retrieve a DATALINK value, embedding an access token when required.

        ``access`` is ``"read"`` or ``"write"``; requesting write access on a
        column whose control mode does not manage updates raises
        :class:`ControlModeError`, mirroring SQL errors in the prototype.
        """

        if self.clock is not None:
            self.clock.charge("datalink_engine_dispatch")
        txn = host_txn.txn if host_txn is not None else None
        row = self.db.select_one(table, where, txn)
        if row is None:
            return None
        schema_column = self.db.catalog.schema(table).column(column)
        if schema_column.dtype is not DataType.DATALINK:
            raise ControlModeError(f"column {column!r} is not a DATALINK column")
        url_text = row.get(column)
        if not url_text:
            return None
        options = options_of_column(schema_column)
        mode = options.control_mode
        parsed = parse_url(url_text)
        token = self._token_for(parsed.server, parsed.path, mode, access,
                                ttl if ttl is not None else options.token_ttl)
        return parsed.with_token(token).render()

    def _token_for(self, server: str, path: str, mode: ControlMode, access: str,
                   ttl: float) -> str | None:
        entry = self._entry(server)
        if access == "write":
            if not mode.supports_update:
                raise ControlModeError(
                    f"files linked in {mode.value} mode cannot be updated through "
                    f"the database (write access is "
                    f"{'blocked' if mode.write_blocked else 'file-system controlled'})")
            return entry.tokens.generate(path, TokenType.WRITE, ttl)
        if access != "read":
            raise ControlModeError(f"unknown access kind {access!r}")
        if mode.requires_read_token:
            return entry.tokens.generate(path, TokenType.READ, ttl)
        return None

    # ------------------------------------------------------- metadata maintenance --
    def update_file_metadata(self, server: str, path: str, size: int, mtime: float,
                             host_txn: HostTransaction) -> int:
        """Update registered size/mtime columns of rows referencing this file."""

        url = format_url(server, path)
        touched = 0
        for rule in self._metadata_rules:
            changes = {}
            if rule.size_column:
                changes[rule.size_column] = int(size)
            if rule.mtime_column:
                changes[rule.mtime_column] = float(mtime)
            if not changes:
                continue
            touched += self.db.update(rule.table, {rule.column: url}, changes,
                                      host_txn.txn)
        return touched

    # ------------------------------------------------------------- link plumbing --
    def _link(self, host_txn: HostTransaction, column, url: str) -> None:
        parsed = parse_url(url)
        entry = self._entry(parsed.server)
        options = options_of_column(column)
        host_txn.servers.add(parsed.server)
        entry.connection.link_file(host_txn.txn_id, parsed.path, options)

    def _unlink(self, host_txn: HostTransaction, url: str) -> None:
        parsed = parse_url(url)
        entry = self._entry(parsed.server)
        host_txn.servers.add(parsed.server)
        entry.connection.unlink_file(host_txn.txn_id, parsed.path)

    # --------------------------------------------------------------- convenience --
    def make_url(self, server: str, path: str) -> str:
        """Format a bare DATALINK URL for *path* on *server*."""

        return format_url(server, path)

    def options_for(self, table: str, column: str) -> DatalinkOptions:
        return options_of_column(self.db.catalog.schema(table).column(column))
