"""The paper's contribution: DataLinks with database-managed file update.

Layout mirrors the system architecture (Figure 1 of the paper):

* :mod:`repro.datalinks.control_modes` -- the DATALINK column control modes
  (``nff``/``rff``/``rfb``/``rdb`` plus the new update modes ``rfd``/``rdd``);
* :mod:`repro.datalinks.tokens` -- read/write access tokens embedded in file
  names;
* :mod:`repro.datalinks.engine` -- the DataLinks engine inside the host DBMS
  (link/unlink on SQL operations, token generation, two-phase commit);
* :mod:`repro.datalinks.dlfm` -- the DataLinks File Manager on each file
  server (repository, daemons, Sync table, versioning, archive, backup);
* :mod:`repro.datalinks.dlfs` -- the stackable DataLinks File System layer;
* :mod:`repro.datalinks.uip` -- the update-in-place file-update session;
* :mod:`repro.datalinks.baselines` -- CICO, CAU, unlink/relink and
  BLOB-in-database comparators from Section 3;
* :mod:`repro.datalinks.sharding` -- the scale-out layer: hash-partitioned
  multi-DLFM deployments with a group-commit queue and batched link
  pipelines;
* :mod:`repro.datalinks.routing` -- the replication-aware routing layer:
  per-prefix placement, per-node roles (serving/witness/fenced) and
  load-balanced read routes with a follower-read staleness bound;
* :mod:`repro.datalinks.placement` -- epoched placement: the versioned
  :class:`~repro.datalinks.placement.PlacementMap` every placement
  consumer validates an epoch against, and the online
  ``rebalance_prefix`` hand-off that moves a URL prefix between shards
  under a two-phase commit (witnesses co-moving with it);
* :mod:`repro.datalinks.replication` -- per-shard witness replicas fed by
  the serving node's repository WAL stream, with epoch-fenced *writable*
  failover and reversed-ship fail-back.
"""

from repro.datalinks.control_modes import AccessControl, ControlMode
from repro.datalinks.tokens import AccessToken, TokenManager, TokenType
from repro.datalinks.datalink_type import DatalinkOptions, OnUnlink


def __getattr__(name: str):
    # Lazy: sharding builds on repro.api, which imports this package.
    if name in ("ShardedDataLinksDeployment", "ShardRouter"):
        from repro.datalinks import sharding

        return getattr(sharding, name)
    if name in ("EpochRegistry", "EpochGuard", "ReplicatedShard",
                "ReplicaApplier", "WalShipper", "WitnessSoftState"):
        from repro.datalinks import replication

        return getattr(replication, name)
    if name in ("ReplicationRouter", "NodeRole"):
        from repro.datalinks import routing

        return getattr(routing, name)
    if name in ("PlacementMap", "PlacementGuard"):
        from repro.datalinks import placement

        return getattr(placement, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccessControl",
    "ControlMode",
    "AccessToken",
    "TokenManager",
    "TokenType",
    "DatalinkOptions",
    "OnUnlink",
    "ShardedDataLinksDeployment",
    "ShardRouter",
    "EpochRegistry",
    "EpochGuard",
    "ReplicatedShard",
    "ReplicaApplier",
    "WalShipper",
    "WitnessSoftState",
    "ReplicationRouter",
    "NodeRole",
    "PlacementMap",
    "PlacementGuard",
]
