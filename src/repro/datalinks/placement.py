"""Epoched placement: the versioned prefix-to-shard map and online rebalancing.

Before this module, placement was a pure function: :class:`ShardRouter`
hashed a URL prefix to a shard once and forever, so the cluster could
neither absorb a skewed prefix nor grow without a rebuild.  This module
makes placement *dynamic* while keeping it a single source of truth:

* :class:`PlacementMap` is the versioned map every placement consumer
  reads.  It layers an override table (prefixes that have been moved) over
  the stable hash and stamps the whole map with a monotonically increasing
  **placement epoch**.  The epoch is threaded through the DataLinks
  engine's DLFM connections, sharded-deployment dispatch and the daemon
  IPC envelopes (:class:`~repro.ipc.message.Message` carries it), so a
  consumer acting on a stale map gets a
  :class:`~repro.errors.PlacementEpochError` redirect-and-retry instead of
  silently writing to the wrong owner;
* :class:`PlacementGuard` is the node-side enforcement.  One guard is
  attached to every DLFM of a shard (the serving node *and* its
  witnesses); it derives its answers from the shared map -- exactly like
  the lease-epoch :class:`~repro.datalinks.replication.EpochGuard` -- so
  routing decisions and fencing checks can never disagree, and a crash
  cannot lose the fence (the node re-reads the map, it does not persist a
  copy);
* :func:`rebalance_prefix` is the online hand-off: a two-phase-commit move
  of one URL prefix -- its linked-file rows, its archived version chain
  and its file content -- from the owning shard to a destination shard,
  with the destination's witnesses mirrored in the same step so a
  promotion *after* the move serves from the destination's witness set.

Epoch spaces
------------
There are two, deliberately separate: the per-shard **lease epoch**
(:class:`~repro.datalinks.replication.EpochRegistry`; who serves a shard)
and the cluster-wide **placement epoch** (this module; which shard owns a
prefix).  Failover bumps the former, rebalancing the latter; a node can be
fenced by either.

The hand-off protocol
---------------------
``rebalance_prefix(deployment, prefix, dest)`` runs the move as one host
transaction with the source and destination DLFMs enlisted as ordinary
two-phase-commit participants, which buys crash-safety from machinery that
already exists (durable PREPARE votes, presumed abort, in-doubt
resolution from the coordinator's durable outcome -- across a failover if
need be):

1. **prepare** -- drain the group-commit queue, flush and ship every WAL so
   the witnesses are caught up, run the source's pending archive jobs for
   the prefix; mark the prefix *moving* in the map (new link/unlink
   traffic for it is refused with a retryable
   :class:`~repro.errors.PlacementError` until the hand-off resolves --
   traffic for every other prefix keeps flowing);
2. **export** (failpoint ``rebalance:export``) -- the source DLFM deletes
   the prefix's ``linked_files`` and ``file_versions`` rows inside its
   branch transaction and returns them.  In-flight opens, updates or
   un-archived jobs under the prefix abort the move with a retryable
   error;
3. **archive/content hand-off** (``rebalance:archive``) -- the prefix's
   file content is copied below DLFS to the destination's serving node
   *and every destination witness* (the archived version chain itself
   lives on the shared archive server; only its metadata rows move);
4. **import** (``rebalance:import``) -- the destination DLFM re-inserts
   the rows (inode numbers rebound to its own file system, link-time
   access constraints re-applied, version chain re-attached) inside its
   branch transaction;
5. **fence + commit** (``rebalance:fence``) -- the host two-phase commit
   resolves both branches; the map's epoch bumps and the override swings
   **atomically at the durable coordinator outcome**: if a participant
   crashes mid-commit the coordinator redrives the survivors and the move
   still completes (the crashed side resolves its in-doubt branch from the
   host outcome during recovery or witness promotion), while any failure
   before the host commit rolls both branches back and leaves the map
   untouched.

After the commit the source is fenced for the prefix *under the old
epoch*: its placement guard now derives a different owner from the map,
so any straggler write addressed to it is refused with a
:class:`~repro.errors.PlacementEpochError` naming the new owner.  The
source's witnesses converge through their normal WAL stream (the export's
deletes ship like any other records) and the destination's witnesses hold
both the mirrored content and -- once the destination's branch records
ship -- the repository rows, which is what makes promotion-after-move
serve from the destination's witness set.

Two windows the protocol closes explicitly:

* **dual-serve** -- between export and commit the source's repository rows
  are deleted inside the open branch, but the source DLFM keeps a
  pre-export snapshot of them (see ``DLFileManager.rebalance_export``) and
  answers read-path upcalls (token validation, open checks) from it, so a
  move is *read-invisible*: hot-prefix reads keep succeeding on the source
  for the whole hand-off.  Only link/unlink writes are back-pressured
  (retryable :class:`~repro.errors.PlacementError`).  The snapshot dies
  with the branch: commit and abort both drop it, and a crash loses it
  along with the branch it shadowed;
* **source GC** -- a committed move leaves the prefix's physical bytes on
  the fenced source (serving node *and* witnesses, whose replicated copies
  were restored owner-writable when the export's DELETEs applied).  The
  hand-off records a pending sweep *before* attempting it, verifies the
  destination holds every moved path (content and repository row) and only
  then unlinks the source copies; any verification failure defers the
  sweep, and a crash between commit and sweep leaves the pending entry for
  recovery to redrive (``ShardedDataLinksDeployment.redrive_sweeps``).

Splits and merges
-----------------
A single hot prefix can outgrow any one shard.  :meth:`PlacementMap.split_prefix`
deepens the *effective* routing depth under one subtree -- ``/hot`` at
depth 1 splits into ``/hot/a``, ``/hot/b``, ... at depth 2 -- so its
sub-prefixes can be rebalanced independently.  Every sub-prefix that
already holds linked files is pinned to the current owner at split time
(no data teleports on the epoch bump); brand-new sub-prefixes hash freely
onto the cluster.  :meth:`PlacementMap.merge_prefix` reverses a split once
the subtree has gone cold and its sub-prefixes are co-located again.  Both
transitions bump the placement epoch, so stale consumers get the same
redirect-and-retry treatment as after a move.
"""

from __future__ import annotations

from repro.errors import PlacementEpochError, PlacementError, ReproError
from repro.simclock import synchronized_call


def path_under(prefix: str, path: str) -> bool:
    """Is *path* inside *prefix* (the prefix itself included)?"""

    return path == prefix or path.startswith(prefix.rstrip("/") + "/")


class PlacementMap:
    """The versioned prefix-to-shard map.

    Layers moved-prefix overrides over a stable base hash (any object with
    ``shard_of``/``prefix_of``/``shard_names``/``prefix_depth`` --
    normally a :class:`~repro.datalinks.routing.ShardRouter`) and stamps
    the whole map with a monotonically increasing epoch.  Epoch 1 is the
    deployment-time hash placement; every committed move bumps it.
    """

    def __init__(self, base):
        self.base = base
        self.epoch = 1
        #: Moved prefixes: ``prefix -> owning shard``.  Absence means the
        #: base hash still decides.
        self.overrides: dict[str, str] = {}
        #: Prefixes with a hand-off in flight: ``prefix -> destination``.
        self.moving: dict[str, str] = {}
        #: Split subtrees: ``prefix -> deeper effective routing depth``.
        self.split_depths: dict[str, int] = {}
        self.moves = 0
        self.splits = 0
        self.merges = 0
        # Memoized effective prefixes; valid until the split set changes
        # (every router lookup and traffic note funnels through prefix_of).
        self._prefix_cache: dict[str, str] = {}

    # --------------------------------------------------------- base passthrough --
    @property
    def shard_names(self) -> list[str]:
        return self.base.shard_names

    @property
    def prefix_depth(self) -> int:
        return self.base.prefix_depth

    def prefix_of(self, path: str) -> str:
        """The *effective* routing prefix of *path* (split-aware).

        Starts from the base depth and deepens while the current prefix
        has a split recorded, so nested splits compose.  A path with fewer
        components than a split's depth keeps the shallower prefix.
        """

        # The map's own memo covers the no-split case too, so hot callers
        # (routing's traffic notes, URL owner resolution) can probe
        # ``_prefix_cache`` inline and skip this frame entirely on a warm
        # path; split/merge transitions clear it (see note_split/note_merge).
        try:
            return self._prefix_cache[path]
        except KeyError:
            pass
        # Base-router memo hit probed inline as well (its prefix_of is a
        # pure function of the fixed shard list/depth).
        base = self.base
        try:
            prefix = base._prefix_cache[path]
        except KeyError:
            prefix = base.prefix_of(path)
        if not self.split_depths:
            if len(self._prefix_cache) > 8192:
                self._prefix_cache.clear()
            self._prefix_cache[path] = prefix
            return prefix
        components = [part for part in path.split("/") if part]
        depth = self.base.prefix_depth
        while prefix in self.split_depths:
            deeper = min(self.split_depths[prefix], len(components))
            if deeper <= depth:
                break
            depth = deeper
            prefix = "/" + "/".join(components[:depth])
        if len(self._prefix_cache) > 8192:
            self._prefix_cache.clear()
        self._prefix_cache[path] = prefix
        return prefix

    # ------------------------------------------------------------------ lookups --
    def shard_of(self, path: str) -> str:
        """The shard currently owning *path* (override- and split-aware)."""

        try:
            prefix = self._prefix_cache[path]
        except KeyError:
            prefix = self.prefix_of(path)
        override = self.overrides.get(prefix)
        return override if override is not None \
            else self.base.shard_of_key(prefix)

    def owner_of(self, prefix: str, default: str | None = None) -> str:
        """Current owner of *prefix*; *default* overrides the base hash.

        The *default* matters for URLs: a DATALINK URL names the shard
        that owned the prefix when the link was made, which is
        authoritative unless a move overrode it.  The fallback hashes the
        prefix *as a key* (not back through ``prefix_of``), so deepened
        split sub-prefixes resolve without being re-shallowed.
        """

        override = self.overrides.get(prefix)
        if override is not None:
            return override
        return default if default is not None \
            else self.base.shard_of_key(prefix)

    def is_moving(self, prefix: str) -> bool:
        return prefix in self.moving

    # -------------------------------------------------------------- transitions --
    def begin_move(self, prefix: str, dest: str) -> None:
        if prefix in self.moving:
            raise PlacementError(
                f"prefix {prefix!r} is already being rebalanced to "
                f"{self.moving[prefix]!r}; retry after that hand-off resolves")
        self.moving[prefix] = dest

    def abort_move(self, prefix: str) -> None:
        self.moving.pop(prefix, None)

    def commit_move(self, prefix: str, dest: str) -> int:
        """Swing *prefix* to *dest* and bump the epoch (the commit point).

        The override is recorded even when *dest* is the prefix's hash
        home: once a prefix has been explicitly placed, URLs minted while
        it lived elsewhere name that elsewhere, and only an override entry
        makes :meth:`owner_of` resolve them to the current owner instead
        of trusting the URL's stale server name.
        """

        self.moving.pop(prefix, None)
        self.overrides[prefix] = dest
        self.epoch += 1
        self.moves += 1
        return self.epoch

    def split_prefix(self, prefix: str, depth: int,
                     pins: dict[str, str]) -> int:
        """Deepen the effective routing depth under *prefix* (a split).

        *pins* maps every sub-prefix that already holds linked files to
        its current owner: the split itself moves no data, it only lets
        subsequent rebalances address the subtree at finer grain.  New
        sub-prefixes (no pin) hash freely onto the cluster.  Bumps the
        placement epoch.
        """

        if self.is_moving(prefix):
            raise PlacementError(
                f"cannot split {prefix!r} while it is being rebalanced to "
                f"{self.moving[prefix]!r}; retry after the hand-off resolves")
        if prefix in self.split_depths:
            raise PlacementError(
                f"prefix {prefix!r} is already split to depth "
                f"{self.split_depths[prefix]}")
        own_depth = len([part for part in prefix.split("/") if part])
        if depth <= own_depth:
            raise PlacementError(
                f"split depth {depth} does not deepen {prefix!r} "
                f"(its own depth is {own_depth})")
        self.split_depths[prefix] = int(depth)
        self._prefix_cache.clear()
        for sub, owner in pins.items():
            self.overrides[sub] = owner
        self.epoch += 1
        self.splits += 1
        return self.epoch

    def merge_prefix(self, prefix: str, shard: str) -> int:
        """Reverse a split: route *prefix* shallowly again, owned by *shard*.

        The caller must have co-located every sub-prefix on *shard* first
        (``ShardedDataLinksDeployment.merge_prefix`` verifies this); the
        map refuses while any part of the subtree is mid-move or nested
        splits remain.  Sub-prefix overrides under *prefix* are dropped
        and replaced by one override for the whole subtree.  Bumps the
        placement epoch.
        """

        if prefix not in self.split_depths:
            raise PlacementError(f"prefix {prefix!r} is not split")
        for sub in self.moving:
            if path_under(prefix, sub):
                raise PlacementError(
                    f"cannot merge {prefix!r} while {sub!r} is being "
                    f"rebalanced; retry after the hand-off resolves")
        for sub in self.split_depths:
            if sub != prefix and path_under(prefix, sub):
                raise PlacementError(
                    f"cannot merge {prefix!r} while nested split {sub!r} "
                    f"remains; merge it first")
        del self.split_depths[prefix]
        self._prefix_cache.clear()
        for sub in [key for key in self.overrides
                    if key != prefix and path_under(prefix, key)]:
            del self.overrides[sub]
        self.overrides[prefix] = shard
        self.epoch += 1
        self.merges += 1
        return self.epoch

    # ---------------------------------------------------------------- validation --
    def check_epoch(self, observed: int) -> None:
        """Reject a request stamped with a placement epoch older than ours."""

        if observed < self.epoch:
            raise PlacementEpochError(
                f"placement epoch {observed} is stale (current epoch "
                f"{self.epoch}); refresh the placement map and retry",
                epoch=self.epoch, observed=observed)

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "moves": self.moves,
            "splits": self.splits,
            "merges": self.merges,
            "overrides": dict(self.overrides),
            "moving": dict(self.moving),
            "split_depths": dict(self.split_depths),
        }


class PlacementGuard:
    """One node's view of the placement map, enforced before serving writes.

    Attached to every DLFM of a shard (serving node and witnesses alike):
    the guard derives ownership from the shared :class:`PlacementMap` on
    every check, so it cannot drift from routing decisions and a node
    crash cannot lose a fence -- on recovery the node simply re-reads the
    map.  A write for a prefix this shard no longer owns raises
    :class:`~repro.errors.PlacementEpochError` naming the current owner
    (the redirect), and a write for a prefix with a hand-off in flight
    raises a retryable :class:`~repro.errors.PlacementError`.
    """

    def __init__(self, placement: PlacementMap, shard: str):
        self.placement = placement
        self.shard = shard

    def check_path(self, path: str) -> None:
        prefix = self.placement.prefix_of(path)
        if self.placement.is_moving(prefix):
            raise PlacementError(
                f"prefix {prefix!r} is being rebalanced to "
                f"{self.placement.moving[prefix]!r}; retry after the "
                f"hand-off commits")
        owner = self.placement.shard_of(path)
        if owner != self.shard:
            raise PlacementEpochError(
                f"shard {self.shard!r} no longer owns prefix {prefix!r} "
                f"(placement epoch {self.placement.epoch}); it moved to "
                f"{owner!r} -- refresh the placement map and retry there",
                prefix=prefix, owner=owner, epoch=self.placement.epoch)

    def check_epoch(self, observed: int) -> None:
        self.placement.check_epoch(observed)


# ---------------------------------------------------------------------------
# the online hand-off
# ---------------------------------------------------------------------------

def _fire(failpoints: dict, point: str) -> None:
    hook = failpoints.get(point)
    if hook is not None:
        hook()


def _validate(deployment, prefix: str, dest: str):
    """Pre-flight checks; returns ``(placement_map, source_shard)``.

    Every refusal is a descriptive :class:`~repro.errors.PlacementError`
    naming the cure, mirroring the fail_over/fail_back polish.
    """

    router = deployment.router
    pmap = router.placement
    if dest not in deployment.shard_names:
        raise PlacementError(
            f"cannot rebalance {prefix!r} to {dest!r}: no such shard "
            f"(known shards: {deployment.shard_names})")
    if dest not in deployment.replicas:
        raise PlacementError(
            f"cannot rebalance {prefix!r} to {dest!r}: the destination has "
            f"no witness replica because the deployment was built with "
            f"replication=False; a hand-off must leave the prefix "
            f"promotable on the destination")
    normalized = pmap.prefix_of(prefix)
    if normalized != prefix:
        raise PlacementError(
            f"{prefix!r} is not a routed prefix at prefix depth "
            f"{pmap.prefix_depth}; did you mean {normalized!r}?")
    return pmap, pmap.owner_of(prefix)


def rebalance_prefix(deployment, prefix: str, dest: str,
                     failpoints: dict | None = None) -> dict:
    """Move *prefix* from its current owner to *dest* under a 2PC hand-off.

    See the module docstring for the protocol.  Returns a summary with the
    new placement epoch, the number of files and versions moved, and
    whether the commit had to be redriven past a participant crash.
    """

    failpoints = failpoints if failpoints is not None else {}
    router = deployment.router
    engine = deployment.engine
    pmap, source = _validate(deployment, prefix, dest)
    src_server = router.serving_server(source)

    # Unknown before already-placed: a prefix nobody linked under is
    # "unknown" even when its hash happens to land on the destination.
    preview = [row for row in src_server.dlfm.repository.linked_files()
               if path_under(prefix, row["path"])]
    if not preview and prefix not in pmap.overrides:
        raise PlacementError(
            f"unknown prefix {prefix!r}: shard {source!r} has no linked "
            f"files under it (prefix depth {pmap.prefix_depth}); nothing "
            f"to rebalance")
    if source == dest:
        raise PlacementError(
            f"prefix {prefix!r} already lives on {dest!r} (placement epoch "
            f"{pmap.epoch}); nothing to move")
    dst_replica = deployment.replicas[dest]
    router.serving_server(dest)          # raises with the cure when down

    _fire(failpoints, "rebalance:prepare")
    pmap.begin_move(prefix, dest)
    try:
        # Settle the cluster: pending commit groups drain, every WAL
        # flushes (which ships the durable suffix to the witnesses), and
        # the source's archive queue for the prefix empties.
        deployment.drain()
        deployment.system.flush_logs()
        with synchronized_call(deployment.clock, src_server.clock):
            src_server.dlfm.process_archive_jobs()

        host_txn = engine.begin()
        redriven = False
        try:
            _fire(failpoints, "rebalance:export")
            export = engine.rebalance_export(host_txn, source, prefix)
            rows, versions = export["rows"], export["versions"]

            _fire(failpoints, "rebalance:archive")
            copied = 0
            for row in rows:
                path = row["path"]
                if not src_server.files.exists(path):
                    continue
                content = src_server.files.read(path)
                dst_replica.receive_file(path, content,
                                         row["original_uid"],
                                         row["original_gid"])
                copied += 1

            _fire(failpoints, "rebalance:import")
            engine.rebalance_import(host_txn, dest, rows, versions)

            _fire(failpoints, "rebalance:fence")
            engine.commit(host_txn)
        except Exception:
            if deployment.host_db.txn_outcome(host_txn.txn_id) == "committed":
                # The coordinator's outcome is durable: the move committed
                # even though a participant failed mid-commit.  Redrive the
                # survivors; the crashed side resolves its in-doubt branch
                # from this outcome during recovery or witness promotion.
                engine.redrive_commit(host_txn)
                redriven = True
            else:
                try:
                    engine.abort(host_txn)
                except ReproError:
                    pass
                raise
    except Exception:
        pmap.abort_move(prefix)
        raise

    # The commit point: the map swings and the epoch bumps together.  The
    # source's placement guards now derive a different owner, which *is*
    # the fence under the old epoch -- no per-node state to push, nothing
    # a crash can lose.
    epoch = pmap.commit_move(prefix, dest)

    # Source GC.  The pending entry is recorded *before* the sweep runs
    # (and before the crash-injection failpoint), so a crash between
    # commit and sweep leaves a durable to-do that recovery redrives
    # instead of a silent leak.
    deployment.pending_sweeps[prefix] = {
        "prefix": prefix, "source": source, "dest": dest,
        "paths": [row["path"] for row in rows]}
    _fire(failpoints, "rebalance:sweep")
    sweep = sweep_moved_prefix(deployment, prefix)
    return {"moved": True, "prefix": prefix, "source": source, "dest": dest,
            "epoch": epoch, "moved_files": len(rows),
            "moved_versions": len(versions), "copied_files": copied,
            "redriven_commit": redriven,
            "swept_files": sweep["swept_files"],
            "sweep_deferred": sweep["deferred"]}


def sweep_moved_prefix(deployment, prefix: str) -> dict:
    """Delete a moved prefix's physical bytes on the fenced source.

    Destructive, so verification comes first: the destination's serving
    node must be up and must hold both the physical content and the
    repository row for every moved path.  Any verification failure or
    unreachable source node defers the whole sweep -- the pending entry
    stays and ``redrive_sweeps``/shard recovery retries -- rather than
    risking the only surviving copy (or leaving one source node swept and
    another leaking).
    """

    entry = deployment.pending_sweeps.get(prefix)
    if entry is None:
        return {"swept_files": 0, "deferred": False}
    router = deployment.router
    try:
        # The export's DELETEs must reach the source witnesses before the
        # unlink: DLFS refuses to remove a file its repository still calls
        # linked, so settle the group-commit queue and ship every WAL.
        deployment.drain()
        deployment.system.flush_logs()
        dst = router.serving_server(entry["dest"])
        for path in entry["paths"]:
            if not dst.files.exists(path) or \
                    dst.dlfm.repository.linked_file(path) is None:
                raise PlacementError(
                    f"destination {entry['dest']!r} does not hold {path!r}; "
                    f"deferring the source sweep for {prefix!r}")
        replica = deployment.replicas.get(entry["source"])
        source_nodes = list(replica.nodes.values()) if replica is not None \
            else [router.serving_server(entry["source"])]
        if not all(node.running for node in source_nodes):
            raise PlacementError(
                f"a source node of {entry['source']!r} is down; deferring "
                f"the sweep for {prefix!r} until it recovers")
        swept = 0
        for node in source_nodes:
            with synchronized_call(deployment.clock, node.clock):
                for path in entry["paths"]:
                    if node.files.exists(path):
                        node.files.unlink(path)
                        swept += 1
    except ReproError:
        return {"swept_files": 0, "deferred": True}
    deployment.pending_sweeps.pop(prefix, None)
    return {"swept_files": swept, "deferred": False}
