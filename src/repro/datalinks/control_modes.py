"""DATALINK control modes (Table 1 of the paper, plus the new update modes).

A control mode is written as three letters: referential integrity
(``n``/``r``), read access control and write access control (``f`` file
system, ``b`` blocked, ``d`` DBMS).  The pre-existing technology offers
``nff``, ``rff``, ``rfb`` and ``rdb``; the paper's contribution adds ``rfd``
and ``rdd``, in which the DBMS manages *write* access so files can be updated
in place under transaction control.

The attribute decomposition (``read_control``, ``supports_update``, ...) is
precomputed once per member at import time instead of being re-derived on
every access: the link/open hot paths consult these on every operation.
"""

from __future__ import annotations

import enum

from repro.errors import ControlModeError


class AccessControl(enum.Enum):
    """Who controls a particular kind of access to a linked file."""

    FILE_SYSTEM = "f"
    BLOCKED = "b"
    DBMS = "d"


class ControlMode(enum.Enum):
    """The six control modes, named by their three-letter code.

    Each member carries precomputed decomposition attributes (assigned right
    after the class body runs):

    ``referential_integrity``
        does the DBMS guarantee the reference stays valid (no dangling URL)?
    ``read_control`` / ``write_control``
        the :class:`AccessControl` for each access kind;
    ``full_control``
        neither read nor write access is left to the FS;
    ``supports_update``
        the paper's new modes where the DBMS manages write access;
    ``write_blocked``
        writes are permanently refused;
    ``requires_read_token`` / ``requires_write_token``
        which operations must present a token;
    ``takes_over_on_link``
        full-control files are taken over (ownership change) at link time;
    ``made_read_only_on_link``
        modes whose linked file is marked read-only at the file system
        (``rfb`` blocks writes permanently; ``rfd`` keeps the file read-only
        between updates so a write open fails and triggers the DLFM
        take-over path, Section 4.2);
    ``reads_serialized_with_writes``
        only full-control modes serialize readers against writers -- the
        paper accepts that ``rfd`` readers may observe a concurrent update
        (Section 5).
    """

    NFF = "nff"
    RFF = "rff"
    RFB = "rfb"
    RDB = "rdb"
    RFD = "rfd"   # new: write access managed by the DBMS, reads through the FS
    RDD = "rdd"   # new: both read and write access managed by the DBMS

    # -- parsing -----------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "ControlMode":
        # Canonical lowercase codes (the overwhelmingly common case: every
        # mode stored in the catalog or a Sync reply is already canonical)
        # hit the dict directly; only a miss pays the ``.lower()`` call.
        mode = _MODES_BY_CODE.get(text)
        if mode is None:
            mode = _MODES_BY_CODE.get(text.lower())
            if mode is None:
                raise ControlModeError(f"unknown control mode {text!r}")
        return mode

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


_MODES_BY_CODE = {mode.value: mode for mode in ControlMode}

for _mode in ControlMode:
    _mode.referential_integrity = _mode.value[0] == "r"
    _mode.read_control = AccessControl(_mode.value[1])
    _mode.write_control = AccessControl(_mode.value[2])
    _mode.full_control = (_mode.read_control is not AccessControl.FILE_SYSTEM
                          and _mode.write_control is not AccessControl.FILE_SYSTEM)
    _mode.supports_update = _mode.write_control is AccessControl.DBMS
    _mode.write_blocked = _mode.write_control is AccessControl.BLOCKED
    _mode.requires_read_token = _mode.read_control is AccessControl.DBMS
    _mode.requires_write_token = _mode.supports_update
    _mode.takes_over_on_link = _mode.full_control
    _mode.made_read_only_on_link = _mode.value in ("rfb", "rfd")
    _mode.reads_serialized_with_writes = _mode.full_control
del _mode
