"""DATALINK control modes (Table 1 of the paper, plus the new update modes).

A control mode is written as three letters: referential integrity
(``n``/``r``), read access control and write access control (``f`` file
system, ``b`` blocked, ``d`` DBMS).  The pre-existing technology offers
``nff``, ``rff``, ``rfb`` and ``rdb``; the paper's contribution adds ``rfd``
and ``rdd``, in which the DBMS manages *write* access so files can be updated
in place under transaction control.
"""

from __future__ import annotations

import enum

from repro.errors import ControlModeError


class AccessControl(enum.Enum):
    """Who controls a particular kind of access to a linked file."""

    FILE_SYSTEM = "f"
    BLOCKED = "b"
    DBMS = "d"


class ControlMode(enum.Enum):
    """The six control modes, named by their three-letter code."""

    NFF = "nff"
    RFF = "rff"
    RFB = "rfb"
    RDB = "rdb"
    RFD = "rfd"   # new: write access managed by the DBMS, reads through the FS
    RDD = "rdd"   # new: both read and write access managed by the DBMS

    # -- parsing -----------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "ControlMode":
        try:
            return cls(text.lower())
        except ValueError:
            raise ControlModeError(f"unknown control mode {text!r}") from None

    # -- attribute decomposition ---------------------------------------------------
    @property
    def referential_integrity(self) -> bool:
        """Does the DBMS guarantee the reference stays valid (no dangling URL)?"""

        return self.value[0] == "r"

    @property
    def read_control(self) -> AccessControl:
        return AccessControl(self.value[1])

    @property
    def write_control(self) -> AccessControl:
        return AccessControl(self.value[2])

    # -- derived predicates -----------------------------------------------------------
    @property
    def full_control(self) -> bool:
        """Under full control, neither read nor write access is left to the FS."""

        return (self.read_control is not AccessControl.FILE_SYSTEM
                and self.write_control is not AccessControl.FILE_SYSTEM)

    @property
    def supports_update(self) -> bool:
        """True for the paper's new modes where the DBMS manages write access."""

        return self.write_control is AccessControl.DBMS

    @property
    def write_blocked(self) -> bool:
        return self.write_control is AccessControl.BLOCKED

    @property
    def requires_read_token(self) -> bool:
        """Reads need a token only when the DBMS controls read access."""

        return self.read_control is AccessControl.DBMS

    @property
    def requires_write_token(self) -> bool:
        """Writes need a token exactly in the update modes (rfd, rdd)."""

        return self.supports_update

    @property
    def takes_over_on_link(self) -> bool:
        """Full-control files are taken over (ownership change) at link time."""

        return self.full_control

    @property
    def made_read_only_on_link(self) -> bool:
        """Modes whose linked file is marked read-only at the file system.

        ``rfb`` blocks writes permanently; ``rfd`` keeps the file read-only
        between updates so a write open fails and triggers the DLFM take-over
        path (Section 4.2); full-control modes rely on the ownership change.
        """

        return self in (ControlMode.RFB, ControlMode.RFD)

    @property
    def reads_serialized_with_writes(self) -> bool:
        """Only full-control modes serialize readers against writers.

        The paper accepts that ``rfd`` readers may observe a concurrent
        update (Section 5): read opens of files not under full control never
        reach the DLFM, so no read-write synchronization is possible.
        """

        return self.full_control

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value
