"""DataLinks File System (DLFS): the stackable interposition layer."""

from repro.datalinks.dlfs.layer import DataLinksFileSystem
from repro.datalinks.dlfs.upcall_client import UpcallClient

__all__ = ["DataLinksFileSystem", "UpcallClient"]
