"""The DLFS side of the upcall interface to the DLFM upcall daemon."""

from __future__ import annotations

from repro.ipc.channel import Channel


class UpcallClient:
    """Typed wrapper over the upcall channel (one per DLFS instance).

    Every method is one IPC round trip to the upcall daemon and therefore
    charges ``upcall_round_trip`` simulated latency.  DLFS and its upcall
    daemon live on the same file-server node, so both ends share one clock
    domain and the round trip is serial on that node's timeline (an upcall
    never overlaps the open that issued it).  DataLinks errors raised by
    the DLFM propagate out of these calls; the DLFS layer translates them
    into file-system errors.
    """

    def __init__(self, upcall_daemon, clock=None, sender: str = "dlfs"):
        self._channel = Channel(upcall_daemon, clock,
                                latency_primitive="upcall_round_trip", sender=sender)

    def validate_token(self, ino: int, token: str, userid: int) -> dict:
        return self._channel.request("validate_token", ino=ino, token=token,
                                     userid=userid)

    def check_open(self, ino: int, wants_write: bool, userid: int) -> dict:
        return self._channel.request("check_open", ino=ino, wants_write=wants_write,
                                     userid=userid)

    def write_open_fallback(self, ino: int, userid: int) -> dict:
        return self._channel.request("write_open_fallback", ino=ino, userid=userid)

    def file_closed(self, ino: int, was_write: bool, userid: int) -> dict:
        return self._channel.request("file_closed", ino=ino, was_write=was_write,
                                     userid=userid)

    def is_linked(self, ino: int) -> dict:
        return self._channel.request("is_linked", ino=ino)
