"""The DataLinks File System layer.

DLFS sits between the logical file system and the native file system as a
stackable VFS filter.  It intercepts ``fs_lookup``, ``fs_open``, ``fs_close``,
``fs_remove`` and ``fs_rename`` (Section 2.3); read and write calls are *not*
intercepted, which is the key performance property of the DataLinks design
("it is only involved in open and close of the file and does not interfere in
read/write accesses").

The interception logic implements Section 4 of the paper:

* ``fs_lookup`` strips the embedded access token and asks the upcall daemon
  to validate it, which registers a token entry keyed by user id at the DLFM;
* ``fs_open`` of a file owned by the DBMS user (full control, or taken over
  during an rfd update) asks the DLFM to check the token entry and Sync
  table; approved opens are performed with the DBMS credentials;
* a *failed* write open of a file not owned by the DBMS triggers the rfd
  fallback: the DLFM verifies the mode and write token, takes the file over,
  and DLFS retries the open (Section 4.2);
* ``fs_close`` notifies the DLFM so it can update metadata, trigger archiving
  and release the take-over;
* ``fs_remove``/``fs_rename`` of a linked file are rejected so the database
  never holds a dangling reference.
"""

from __future__ import annotations

from repro.errors import (
    AccessDeniedError,
    ControlModeError,
    DaemonUnavailableError,
    DataLinksError,
    Errno,
    FencedNodeError,
    FileSystemError,
    InvalidTokenError,
    LinkConflictError,
    PlacementEpochError,
    UpdateInProgressError,
    fs_error,
)
from repro.fs.vfs import (
    WRITE_MASK,
    Credentials,
    FilterVFS,
    LockKind,
    LockRequest,
    OpenFlags,
    OpenHandle,
    Vnode,
)
from repro.util.urls import TOKEN_SEPARATOR, split_token_from_name

_TOKEN_SEPARATOR = TOKEN_SEPARATOR
_TOKEN_SEPARATOR_LEN = len(TOKEN_SEPARATOR)

LAYER_KEY = "dlfs"


def _translate(error: DataLinksError) -> FileSystemError:
    """Map a DataLinks refusal onto the errno an application would see.

    Fencing and placement refusals pass through *untranslated*: they are
    cluster-routing conditions (the node lost its lease, or the prefix
    moved to another shard), and the session layer above must see them to
    drive its redirect/retry -- no errno captures that, and flattening
    them to EACCES would make a retryable failover indistinguishable from
    a real permission error.
    """

    if isinstance(error, (FencedNodeError, PlacementEpochError)):
        return error
    if isinstance(error, (UpdateInProgressError, LinkConflictError)):
        return fs_error(Errno.EBUSY, str(error))
    if isinstance(error, (AccessDeniedError, InvalidTokenError, ControlModeError)):
        return fs_error(Errno.EACCES, str(error))
    if isinstance(error, DaemonUnavailableError):
        return fs_error(Errno.EAGAIN, str(error))
    return fs_error(Errno.EACCES, str(error))


class DataLinksFileSystem(FilterVFS):
    """The DLFS interposition layer for one file server."""

    def __init__(self, lower, upcall_client, dbms_uid: int, clock=None,
                 dbms_cred: Credentials | None = None,
                 strict_read_upcalls: bool = False):
        super().__init__(lower, fs_id=f"dlfs({lower.fs_id})")
        self.upcall = upcall_client
        self.dbms_uid = dbms_uid
        self.clock = clock
        # Credentials DLFS uses when it performs an open on behalf of the
        # DBMS after approval (kernel code is not subject to the mode bits).
        self.dbms_cred = dbms_cred if dbms_cred is not None else Credentials(
            uid=0, gid=0, username="dlfs")
        # The paper's sketched future-work fix for the rfd window: make an
        # upcall on *every* read open so the DLFM can record Sync entries for
        # files linked with strict_read_sync.  Off by default because of the
        # per-open cost (quantified by experiment E10).
        self.strict_read_upcalls = strict_read_upcalls
        # Primed per-interception charge amount (see fs_lookup).
        self._primed_clock = None
        self._amt_filter = 0.0

    # ------------------------------------------------------------------ helpers --
    def _charge(self) -> None:
        if self.clock is not None:
            self.clock.charge("dlfs_filter")

    def _upcall(self, call):
        try:
            return call()
        except DataLinksError as error:
            raise _translate(error) from error

    def _lock_owner(self, vnode: Vnode, cred: Credentials) -> tuple:
        return ("dlfs", vnode.ino, cred.uid)

    def walk_profile(self):
        # A token-free lookup through DLFS is the filter charge plus the
        # lower layer's fixed sequence; token-carrying components make
        # upcalls, so the logical layer only replays token-free walks
        # (it checks each component for the ``;token=`` marker).
        lower = self.lower.walk_profile()
        if lower is None:
            return None
        lower_clock, lower_events, anchor = lower
        if self.clock is None:
            return lower
        if lower_clock is not None and lower_clock is not self.clock:
            # Split-clock stacks cannot replay as one pattern; resolve live.
            return None
        return (self.clock, (("dlfs_filter", 1.0, None), *lower_events), anchor)

    # ------------------------------------------------------------------- lookup --
    def fs_lookup(self, dir_vnode, name, cred):
        # The hot interception points (lookup/open/close) write both the
        # ``_upcall`` try/except and the ``dlfs_filter`` charge out inline:
        # the lambda, dispatcher and charge frames per interception were
        # measurable on the million-link tier.
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_filter = clock._units["dlfs_filter"]
                except KeyError:
                    self._amt_filter = clock.costs.dlfs_filter
                self._primed_clock = clock
            amount = self._amt_filter
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["dlfs_filter"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["dlfs_filter"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["dlfs_filter"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["dlfs_filter"] = [1, amount]
        # split_token_from_name written out inline -- every pathname
        # resolution passes through here and most names carry no token.
        index = name.rfind(_TOKEN_SEPARATOR)
        if index != -1:
            bare = name[:index]
            token = name[index + _TOKEN_SEPARATOR_LEN:]
        else:
            bare = name
            token = None
        vnode = self.lower.fs_lookup(dir_vnode, bare, cred)
        if token is not None:
            try:
                self.upcall.validate_token(vnode.ino, token, cred.uid)
            except DataLinksError as error:
                raise _translate(error) from error
        return vnode

    def fs_create(self, dir_vnode, name, mode, cred):
        self._charge()
        bare, _ = split_token_from_name(name)
        return self.lower.fs_create(dir_vnode, bare, mode, cred)

    # --------------------------------------------------------------------- open --
    def fs_open(self, vnode, flags, cred):
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_filter = clock._units["dlfs_filter"]
                except KeyError:
                    self._amt_filter = clock.costs.dlfs_filter
                self._primed_clock = clock
            amount = self._amt_filter
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["dlfs_filter"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["dlfs_filter"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["dlfs_filter"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["dlfs_filter"] = [1, amount]
        attrs = self.lower.fs_getattr(vnode, self.dbms_cred)
        wants_write = (flags._value_ & WRITE_MASK) != 0
        state = {"linked": False, "write": wants_write, "userid": cred.uid}

        if attrs.is_regular and attrs.uid == self.dbms_uid:
            try:
                reply = self.upcall.check_open(vnode.ino, wants_write,
                                               cred.uid)
            except DataLinksError as error:
                raise _translate(error) from error
            if reply.get("linked"):
                return self._open_as_dbms(vnode, flags, cred, state, reply)
        elif (self.strict_read_upcalls and attrs.is_regular
              and not wants_write):
            reply = self._upcall(
                lambda: self.upcall.check_open(vnode.ino, False, cred.uid))
            if reply.get("linked"):
                handle = self.lower.fs_open(vnode, flags, cred)
                state.update(linked=True, open_as_dbms=False, mode=reply.get("mode"))
                handle.layer_state[LAYER_KEY] = state
                return handle

        try:
            handle = self.lower.fs_open(vnode, flags, cred)
        except FileSystemError as error:
            if not wants_write or error.errno not in (Errno.EACCES, Errno.EROFS):
                raise
            try:
                reply = self.upcall.write_open_fallback(vnode.ino, cred.uid)
            except DataLinksError as fallback_error:
                raise _translate(fallback_error) from fallback_error
            if not reply.get("linked"):
                raise
            return self._open_as_dbms(vnode, flags, cred, state, reply)
        handle.layer_state[LAYER_KEY] = state
        return handle

    def _open_as_dbms(self, vnode, flags, cred, state, reply) -> OpenHandle:
        handle = self.lower.fs_open(vnode, flags, self.dbms_cred)
        state.update(linked=True, open_as_dbms=True, mode=reply.get("mode"))
        handle.layer_state[LAYER_KEY] = state
        if flags.wants_write:
            # Belt and braces: the Sync table already serializes writers, but
            # the prototype also locks the file through fs_lockctl.
            request = LockRequest(kind=LockKind.EXCLUSIVE,
                                  owner=self._lock_owner(vnode, cred))
            self.lower.fs_lockctl(vnode, request, self.dbms_cred)
            state["locked"] = True
        return handle

    # --------------------------------------------------------------------- close --
    def fs_close(self, handle, cred):
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_filter = clock._units["dlfs_filter"]
                except KeyError:
                    self._amt_filter = clock.costs.dlfs_filter
                self._primed_clock = clock
            amount = self._amt_filter
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["dlfs_filter"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["dlfs_filter"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["dlfs_filter"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["dlfs_filter"] = [1, amount]
        state = handle.layer_state.get(LAYER_KEY, {})
        self.lower.fs_close(handle, cred)
        if not state.get("linked"):
            return
        if state.get("locked"):
            request = LockRequest(kind=LockKind.UNLOCK,
                                  owner=self._lock_owner(handle.vnode, cred))
            self.lower.fs_lockctl(handle.vnode, request, self.dbms_cred)
        try:
            self.upcall.file_closed(handle.vnode.ino, state.get("write", False),
                                    state.get("userid", cred.uid))
        except DataLinksError as error:
            raise _translate(error) from error

    # ----------------------------------------------------------- remove / rename --
    def _protects_namespace(self, vnode: Vnode) -> bool:
        """True when the file is linked in a mode that guarantees integrity.

        ``nff`` links carry no referential-integrity guarantee (Table 1), so
        the file system remains free to remove or rename such files.
        """

        from repro.datalinks.control_modes import ControlMode

        reply = self._upcall(lambda: self.upcall.is_linked(vnode.ino))
        if not reply.get("linked"):
            return False
        return ControlMode.from_string(reply["mode"]).referential_integrity

    def fs_remove(self, dir_vnode, name, cred):
        self._charge()
        bare, _ = split_token_from_name(name)
        vnode = self.lower.fs_lookup(dir_vnode, bare, self.dbms_cred)
        if self._protects_namespace(vnode):
            raise fs_error(Errno.EBUSY,
                           f"{bare!r} is linked to the database; removing it would "
                           f"leave a dangling DATALINK reference")
        return self.lower.fs_remove(dir_vnode, bare, cred)

    def fs_rename(self, src_dir, src_name, dst_dir, dst_name, cred):
        self._charge()
        bare_src, _ = split_token_from_name(src_name)
        bare_dst, _ = split_token_from_name(dst_name)
        vnode = self.lower.fs_lookup(src_dir, bare_src, self.dbms_cred)
        if self._protects_namespace(vnode):
            raise fs_error(Errno.EBUSY,
                           f"{bare_src!r} is linked to the database; renaming it would "
                           f"leave a dangling DATALINK reference")
        return self.lower.fs_rename(src_dir, bare_src, dst_dir, bare_dst, cred)

    # fs_readwrite is intentionally *not* overridden: DataLinks does not
    # interfere in the read/write data path (Section 1).
