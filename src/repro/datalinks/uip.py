"""Update-in-place file update sessions.

The paper's transaction boundary for an external file update is the pair of
``open`` and ``close`` calls: open corresponds to *begin transaction* and
close to *end transaction* (Section 3.1).  :class:`FileUpdateTransaction`
wraps that boundary as a context manager over the plain file-system API:

* entering the context opens the file for write using a tokenized name, which
  drives the DLFM's access checks, Sync-table entry and update tracking;
* leaving the context normally closes the file, which commits the update
  (metadata update + asynchronous archiving);
* leaving the context with an exception first asks the DLFM to roll the
  update back (restore the last committed version, park the in-flight
  content) and then closes the descriptor, so the failed update leaves no
  trace -- the paper's atomicity guarantee.
"""

from __future__ import annotations

from repro.errors import (
    DataLinksError,
    FencedNodeError,
    LeaseMovedError,
    PlacementEpochError,
    ReproError,
)
from repro.fs.logical import LogicalFileSystem
from repro.fs.vfs import Credentials, OpenFlags
from repro.util.urls import DatalinkURL, embed_token_in_name, parse_url


def tokenized_path(url: str | DatalinkURL) -> str:
    """Turn a tokenized DATALINK URL into the path an application opens."""

    parsed = parse_url(url) if isinstance(url, str) else url
    name = embed_token_in_name(parsed.filename, parsed.token)
    directory = parsed.directory.rstrip("/")
    return f"{directory}/{name}"


class FileUpdateTransaction:
    """One in-place update of a database-managed file."""

    def __init__(self, lfs: LogicalFileSystem, url: str, cred: Credentials,
                 abort_callback=None, truncate: bool = False,
                 flags: OpenFlags | None = None):
        self._lfs = lfs
        self._cred = cred
        self._url = parse_url(url)
        if flags is None:
            flags = OpenFlags.READ | OpenFlags.WRITE
            if truncate:
                flags |= OpenFlags.TRUNCATE
        self._flags = flags
        self._abort_callback = abort_callback
        self._fd: int | None = None
        self.committed = False
        self.aborted = False

    # -- context management -----------------------------------------------------
    def __enter__(self) -> "FileUpdateTransaction":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    # -- explicit control ----------------------------------------------------------
    def begin(self) -> "FileUpdateTransaction":
        """Open the file for update (begin transaction)."""

        if self._fd is not None:
            raise DataLinksError("file update already begun")
        self._fd = self._lfs.open(tokenized_path(self._url), self._flags, self._cred)
        return self

    def commit(self) -> None:
        """Close the file (end transaction); the DLFM commits the update.

        If the node holding the file lost its serving lease (failover) or
        its prefix ownership (rebalance) while the update was open, the
        close-side commit is refused by the fence: the update rolls back
        to the last committed version and :class:`~repro.errors.LeaseMovedError`
        tells the caller to re-fetch a write token and retry against the
        node now serving the file.
        """

        if self._fd is None or self.committed or self.aborted:
            return
        try:
            self._lfs.close(self._fd)
        except (FencedNodeError, PlacementEpochError) as error:
            self.abort()
            raise LeaseMovedError(
                f"the node serving {self._url.path!r} was fenced while the "
                f"update was in flight; the update was rolled back -- "
                f"re-fetch a write token and retry ({error})") from error
        self._fd = None
        self.committed = True

    def abort(self) -> None:
        """Roll back the update: restore the last committed version."""

        if self.committed or self.aborted:
            return
        if self._abort_callback is not None:
            self._abort_callback(self._url.server, self._url.path)
        if self._fd is not None:
            # Closing after the rollback is harmless: the tracking entry is
            # gone, so close processing sees an unmodified file.  On a node
            # fenced mid-update even the close upcall is refused -- the
            # descriptor is abandoned (its DLFM state was volatile anyway).
            try:
                self._lfs.close(self._fd)
            except ReproError:
                pass
            self._fd = None
        self.aborted = True

    # -- file operations -------------------------------------------------------------
    @property
    def fd(self) -> int:
        if self._fd is None:
            raise DataLinksError("file update is not open")
        return self._fd

    def read(self, length: int = -1) -> bytes:
        return self._lfs.read(self.fd, length)

    def write(self, data: bytes) -> int:
        return self._lfs.write(self.fd, data)

    def seek(self, offset: int) -> int:
        return self._lfs.lseek(self.fd, offset)

    def replace(self, data: bytes) -> int:
        """Overwrite the whole file with *data*.

        The file must have been opened with ``truncate=True`` when the new
        content may be shorter than the old; otherwise a stale tail would
        survive the rewrite and this method refuses to guess.
        """

        self.seek(0)
        written = self.write(data)
        attrs = self._lfs.fstat(self.fd)
        if attrs.size > len(data):
            raise DataLinksError(
                "replace() with shorter content requires opening the update "
                "with truncate=True")
        return written


def open_for_read(lfs: LogicalFileSystem, url: str, cred: Credentials) -> int:
    """Open a (possibly tokenized) DATALINK URL for reading; returns the fd."""

    return lfs.open(tokenized_path(url), OpenFlags.READ, cred)


class MultiFileUpdate:
    """Update several linked files as one all-or-nothing unit.

    Section 3.1: "If an application wants to update multiple files within a
    user transaction, the nested transaction concept can be applied."  Each
    member file keeps its own open/close (sub-)transaction; this wrapper
    coordinates them so that either every member commits or every member is
    rolled back to its last committed version.
    """

    def __init__(self, updates: list[FileUpdateTransaction]):
        self._updates = list(updates)
        self.committed = False
        self.aborted = False

    def __enter__(self) -> "MultiFileUpdate":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    def begin(self) -> "MultiFileUpdate":
        """Open every member file; if any open fails, none stay open."""

        opened: list[FileUpdateTransaction] = []
        try:
            for update in self._updates:
                update.begin()
                opened.append(update)
        except Exception:
            for update in opened:
                update.abort()
            raise
        return self

    def __iter__(self):
        return iter(self._updates)

    def __getitem__(self, index: int) -> FileUpdateTransaction:
        return self._updates[index]

    def __len__(self) -> int:
        return len(self._updates)

    def commit(self) -> None:
        if self.committed or self.aborted:
            return
        for update in self._updates:
            update.commit()
        self.committed = True

    def abort(self) -> None:
        if self.committed or self.aborted:
            return
        for update in self._updates:
            update.abort()
        self.aborted = True
