"""Coordinated backup and restore of the host database and its file servers.

Section 4.4: every committed file version carries the database state
identifier current at its commit; when the database is restored to an earlier
point in time, each file server restores its linked files to the newest
archived version whose state identifier does not exceed the restored one, so
database metadata and external files come back mutually consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.backup import BackupImage
from repro.storage.database import Database


@dataclass
class SystemBackup:
    """One coordinated backup: the host image plus one image per file server."""

    backup_id: int
    state_id: int
    taken_at: float
    host_image: BackupImage
    dlfm_images: dict[str, BackupImage] = field(default_factory=dict)
    label: str = ""


class BackupCoordinator:
    """Drives coordinated backup/restore across the host DB and all DLFMs."""

    def __init__(self, host_db: Database, managers: dict):
        self._host_db = host_db
        self._managers = dict(managers)
        self._backups: list[SystemBackup] = []
        self._next_id = 1

    def register_manager(self, name: str, manager) -> None:
        self._managers[name] = manager

    # ------------------------------------------------------------------- backup --
    def backup(self, label: str = "") -> SystemBackup:
        """Quiesce archiving, back up every DLFM repository and the host DB."""

        dlfm_images = {}
        for name, manager in sorted(self._managers.items()):
            dlfm_images[name] = manager.backup(label=f"{label}:{name}" if label else name)
        host_image = self._host_db.backup(label)
        backup = SystemBackup(
            backup_id=self._next_id,
            state_id=int(host_image.state_id),
            taken_at=host_image.taken_at,
            host_image=host_image,
            dlfm_images=dlfm_images,
            label=label,
        )
        self._next_id += 1
        self._backups.append(backup)
        return backup

    # ------------------------------------------------------------------ restore --
    def restore(self, backup: SystemBackup) -> dict:
        """Restore the host DB and every file server to *backup*.

        Returns a mapping of file-server name to the list of file paths whose
        content was rolled back to match the restored database state.
        """

        self._host_db.restore(backup.host_image)
        restored: dict[str, list[str]] = {}
        for name, manager in sorted(self._managers.items()):
            image = backup.dlfm_images.get(name)
            if image is None:
                continue
            restored[name] = manager.restore(image, host_state_id=backup.state_id)
        return restored

    def backups(self) -> list[SystemBackup]:
        return list(self._backups)

    def latest(self) -> SystemBackup | None:
        return self._backups[-1] if self._backups else None
