"""Storing file content in database LOBs (the Oracle iFS / Informix IXFS way).

Section 1: "both Oracle's and Informix's approaches incur extra overhead in
read/write accesses as they require database processing to read/write files
from/to LOB/BLOB column.  In contrast, DataLinks imposes far less overhead as
it is only involved in open and close of the file and does not interfere in
read/write accesses."

:class:`BlobFileStore` keeps whole files in a BLOB column of the host
database; every read and write therefore passes through the SQL layer and
pays a per-byte database-processing cost in addition to the storage transfer,
which is exactly the overhead DataLinks avoids.
"""

from __future__ import annotations

from repro.errors import DataLinksError
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType

BLOB_TABLE = "_blob_files"


class BlobFileStore:
    """A file API implemented over a BLOB column."""

    def __init__(self, host_db: Database, clock=None, table: str = BLOB_TABLE):
        self._db = host_db
        self._clock = clock
        self._table = table
        if not self._db.catalog.has_table(table):
            self._db.create_table(TableSchema(table, [
                Column("path", DataType.TEXT, nullable=False),
                Column("content", DataType.BLOB, nullable=False, default=b""),
                Column("size", DataType.INTEGER, nullable=False, default=0),
                Column("mtime", DataType.TIMESTAMP, nullable=False, default=0.0),
            ], primary_key=("path",)))

    def _charge_bytes(self, nbytes: int) -> None:
        if self._clock is not None:
            self._clock.charge("blob_request_overhead")
            self._clock.charge("blob_db_per_byte", nbytes=nbytes)
            self._clock.charge("disk_transfer_per_byte", nbytes=nbytes)
            self._clock.charge("disk_seek")

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # ----------------------------------------------------------------------- API --
    def write(self, path: str, content: bytes) -> None:
        """Store *content* under *path* (INSERT or UPDATE of the BLOB row)."""

        self._charge_bytes(len(content))
        existing = self._db.select_one(self._table, {"path": path}, lock=False)
        row = {"content": bytes(content), "size": len(content), "mtime": self._now()}
        if existing is None:
            row["path"] = path
            self._db.insert(self._table, row)
        else:
            self._db.update(self._table, {"path": path}, row)

    def read(self, path: str) -> bytes:
        """Fetch the content stored under *path* through the SQL layer."""

        row = self._db.select_one(self._table, {"path": path}, lock=False)
        if row is None:
            raise DataLinksError(f"no BLOB file stored under {path!r}")
        self._charge_bytes(row["size"])
        return row["content"]

    def delete(self, path: str) -> None:
        self._db.delete(self._table, {"path": path})

    def exists(self, path: str) -> bool:
        return self._db.select_one(self._table, {"path": path}, lock=False) is not None

    def stat(self, path: str) -> dict:
        row = self._db.select_one(self._table, {"path": path}, lock=False)
        if row is None:
            raise DataLinksError(f"no BLOB file stored under {path!r}")
        return {"size": row["size"], "mtime": row["mtime"]}
