"""Alternative file-update schemes from Section 3 of the paper.

These are the comparison points for update-in-place:

* :mod:`~repro.datalinks.baselines.cico` -- check-in/check-out, where the
  DBMS records an explicit long-lived lock per checked-out file;
* :mod:`~repro.datalinks.baselines.cau` -- copy-and-update, where every
  application works on a private copy and consistency is the application's
  problem (lost updates included);
* :mod:`~repro.datalinks.baselines.unlink_relink` -- the only way to update a
  linked file *before* this paper: unlink, modify, relink;
* :mod:`~repro.datalinks.baselines.blob_store` -- the Oracle iFS / Informix
  IXFS alternative of storing file content in database LOBs.
"""

from repro.datalinks.baselines.cico import CheckInCheckOutManager
from repro.datalinks.baselines.cau import CopyAndUpdateManager
from repro.datalinks.baselines.unlink_relink import UnlinkRelinkUpdater
from repro.datalinks.baselines.blob_store import BlobFileStore

__all__ = [
    "CheckInCheckOutManager",
    "CopyAndUpdateManager",
    "UnlinkRelinkUpdater",
    "BlobFileStore",
]
