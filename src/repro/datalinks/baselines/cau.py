"""Copy-and-update (CAU).

Section 3: "applications can first make a private copy of a file before
updating it ... Multiple applications are allowed to make their own copies of
the same file ... transaction semantics is not enforced by DBMS and
applications themselves need to worry about update atomicity. ... a lost
update can occur with this approach, if not done carefully, and it does
occur."

The manager copies files into a per-user scratch area, remembers the base
modification time of each copy, and on check-in either detects that the
master changed (``policy="detect"``) or blindly overwrites it
(``policy="overwrite"``), counting the lost updates that result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.dlfm.files import FileServerFiles
from repro.errors import DataLinksError, MergeConflictError

COPIES_ROOT = "/.cau_copies"


@dataclass
class PrivateCopy:
    """One user's private copy of a master file."""

    server: str
    path: str
    userid: int
    copy_path: str
    base_mtime: float
    base_size: int


class CopyAndUpdateManager:
    """Private copies plus explicit check-in with a chosen consistency policy."""

    def __init__(self, files_by_server: dict[str, FileServerFiles]):
        self._files = dict(files_by_server)
        self._copies: dict[tuple[str, str, int], PrivateCopy] = {}
        self.lost_updates = 0
        self.conflicts_detected = 0
        self.checkins = 0

    def _server_files(self, server: str) -> FileServerFiles:
        try:
            return self._files[server]
        except KeyError:
            raise DataLinksError(f"unknown file server {server!r}") from None

    # ----------------------------------------------------------------- copy out --
    def make_copy(self, server: str, path: str, userid: int) -> PrivateCopy:
        """Copy the master file into the user's scratch area (no lock taken)."""

        files = self._server_files(server)
        attrs = files.stat(path)
        content = files.read(path)
        safe_name = path.strip("/").replace("/", "__")
        copy_path = f"{COPIES_ROOT}/{userid}/{safe_name}"
        files.lfs.makedirs(f"{COPIES_ROOT}/{userid}", files.dlfm_cred)
        files.lfs.write_file(copy_path, content, files.dlfm_cred)
        copy = PrivateCopy(server=server, path=path, userid=userid,
                           copy_path=copy_path, base_mtime=attrs.mtime,
                           base_size=attrs.size)
        self._copies[(server, path, userid)] = copy
        return copy

    def write_copy(self, copy: PrivateCopy, content: bytes) -> None:
        """Update the user's private copy (the master is untouched)."""

        files = self._server_files(copy.server)
        files.lfs.write_file(copy.copy_path, content, files.dlfm_cred)

    def read_copy(self, copy: PrivateCopy) -> bytes:
        files = self._server_files(copy.server)
        return files.lfs.read_file(copy.copy_path, files.dlfm_cred)

    # ------------------------------------------------------------------ check-in --
    def check_in(self, copy: PrivateCopy, policy: str = "detect") -> dict:
        """Publish the private copy back to the master file.

        ``policy="detect"`` raises :class:`MergeConflictError` when the master
        changed after the copy was taken; ``policy="overwrite"`` publishes
        anyway and counts a lost update when intervening changes existed.
        Returns a summary dict.
        """

        key = (copy.server, copy.path, copy.userid)
        if key not in self._copies:
            raise DataLinksError(
                f"user {copy.userid} has no outstanding copy of {copy.path!r}")
        files = self._server_files(copy.server)
        master = files.stat(copy.path)
        intervening = master.mtime > copy.base_mtime or master.size != copy.base_size
        if intervening and policy == "detect":
            self.conflicts_detected += 1
            raise MergeConflictError(
                f"{copy.path!r} changed since user {copy.userid} copied it; "
                f"manual merge required")
        if intervening:
            self.lost_updates += 1
        content = self.read_copy(copy)
        files.overwrite(copy.path, content)
        del self._copies[key]
        self.checkins += 1
        return {"published": True, "lost_update": intervening and policy == "overwrite"}

    def outstanding_copies(self) -> list[PrivateCopy]:
        return list(self._copies.values())
