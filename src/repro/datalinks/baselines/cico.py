"""Check-in/check-out (CICO) file update.

Section 3: "An application first checks-out the file it wishes to update.
This, in turn, places a lock on the file in the database.  Before the lock is
removed explicitly, no other application is allowed to check-out the same
file. ... the lock is acquired and held for a longer time, thereby curtailing
concurrency.  Further, the DBMS needs to keep track of who has checked out
what files, which requires an extra database update operation for both
check-out and check-in requests."

The manager keeps the check-out registry in a host-database table, so every
check-out and check-in is one database update, and the lock lifetime spans
the whole edit session rather than a single open/close pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CheckoutConflictError, DataLinksError
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType

CHECKOUT_TABLE = "_cico_checkouts"


@dataclass
class Checkout:
    """A live check-out of one file by one user."""

    server: str
    path: str
    userid: int
    checked_out_at: float


class CheckInCheckOutManager:
    """DBMS-mediated exclusive check-outs of external files."""

    def __init__(self, host_db: Database, clock=None):
        self._db = host_db
        self._clock = clock
        if not self._db.catalog.has_table(CHECKOUT_TABLE):
            self._db.create_table(TableSchema(CHECKOUT_TABLE, [
                Column("server", DataType.TEXT, nullable=False),
                Column("path", DataType.TEXT, nullable=False),
                Column("userid", DataType.INTEGER, nullable=False),
                Column("checked_out_at", DataType.TIMESTAMP, nullable=False, default=0.0),
            ], primary_key=("server", "path")))
        self.conflicts = 0
        self.checkouts_granted = 0

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # ---------------------------------------------------------------- check-out --
    def check_out(self, server: str, path: str, userid: int) -> Checkout:
        """Acquire the exclusive database lock on (server, path) for *userid*."""

        existing = self._db.select_one(CHECKOUT_TABLE, {"server": server, "path": path},
                                       lock=False)
        if existing is not None:
            self.conflicts += 1
            raise CheckoutConflictError(
                f"{path!r} on {server!r} is checked out by user {existing['userid']}")
        self._db.insert(CHECKOUT_TABLE, {
            "server": server,
            "path": path,
            "userid": userid,
            "checked_out_at": self._now(),
        })
        self.checkouts_granted += 1
        return Checkout(server=server, path=path, userid=userid,
                        checked_out_at=self._now())

    # ----------------------------------------------------------------- check-in --
    def check_in(self, server: str, path: str, userid: int) -> float:
        """Release the lock; returns how long it was held (simulated seconds)."""

        row = self._db.select_one(CHECKOUT_TABLE, {"server": server, "path": path},
                                  lock=False)
        if row is None or row["userid"] != userid:
            raise DataLinksError(
                f"{path!r} on {server!r} is not checked out by user {userid}")
        self._db.delete(CHECKOUT_TABLE, {"server": server, "path": path})
        return self._now() - row["checked_out_at"]

    # --------------------------------------------------------------------- query --
    def holder_of(self, server: str, path: str) -> int | None:
        row = self._db.select_one(CHECKOUT_TABLE, {"server": server, "path": path},
                                  lock=False)
        return row["userid"] if row is not None else None

    def outstanding(self) -> list[Checkout]:
        rows = self._db.select(CHECKOUT_TABLE, lock=False)
        return [Checkout(row["server"], row["path"], row["userid"],
                         row["checked_out_at"]) for row in rows]
