"""The pre-paper workaround: unlink, update, relink.

"Currently, when write access to an external file is controlled by DBMS, the
file becomes read-only and any update to the file by an application is
rejected.  To update such a file, an application has to first unlink the
file, update it and finally link it again.  Clearly, this approach is quite
inefficient" (Section 1) -- and it opens a window during which the database
holds no reference to (and no control over) the file.

The updater measures both costs: the number of SQL statements / link
operations spent per update, and the length of the unprotected window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.session import Session
from repro.util.urls import parse_url


@dataclass
class UnlinkRelinkStats:
    updates: int = 0
    sql_statements: int = 0
    window_seconds: list = field(default_factory=list)

    @property
    def mean_window(self) -> float:
        if not self.window_seconds:
            return 0.0
        return sum(self.window_seconds) / len(self.window_seconds)


class UnlinkRelinkUpdater:
    """Performs updates the only way the original DataLinks allowed."""

    def __init__(self, system):
        self._system = system
        self.stats = UnlinkRelinkStats()

    def update(self, session: Session, table: str, where, column: str,
               new_content: bytes) -> None:
        """Update the file referenced by (table, where, column) via unlink/relink."""

        engine = self._system.engine
        clock = self._system.clock
        row = engine.select(table, where)[0]
        url = row[column]
        parsed = parse_url(url)
        server = self._system.file_server(parsed.server)

        # 1. Unlink: clear the DATALINK column (one SQL transaction).
        engine.update(table, where, {column: None})
        window_start = clock.now()
        self.stats.sql_statements += 1

        # 2. The file now belongs to the application again; update it through
        #    the ordinary file system API (no database involvement, and no
        #    database protection either).
        server.lfs.write_file(parsed.path, new_content, session.cred, create=False)

        # 3. Relink: restore the reference (a second SQL transaction).
        engine.update(table, where, {column: url})
        self.stats.sql_statements += 1
        self.stats.window_seconds.append(clock.now() - window_start)
        self.stats.updates += 1
