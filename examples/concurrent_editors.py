#!/usr/bin/env python3
"""Concurrent editors: update-in-place vs check-in/check-out vs copy-and-update.

Section 3 of the paper discusses three ways to let applications update
database-managed files.  This example simulates a small team repeatedly
editing a shared set of documents under each scheme and prints what the paper
predicts: CICO and UIP never lose updates but turn concurrent writers away,
while copy-and-update either silently loses work (blind overwrite) or bounces
check-ins back to the user (conflict detection).

Run with:  python examples/concurrent_editors.py
"""

from repro.workloads.editors import ALL_SCHEMES, EditorConfig, compare_schemes


def main() -> None:
    config = EditorConfig(
        editors=6,
        files=3,
        edits_per_editor=4,
        think_ticks=3,
        think_seconds=0.5,
        file_size=8 * 1024,
    )
    print(f"simulating {config.editors} editors x {config.edits_per_editor} edits "
          f"over {config.files} shared files...\n")
    results = compare_schemes(config)

    header = (f"{'scheme':<15} {'completed':>9} {'conflicts':>9} {'lost':>5} "
              f"{'rejected':>8} {'busy s':>7} {'edits/min':>10}")
    print(header)
    print("-" * len(header))
    for scheme in ALL_SCHEMES:
        metrics = results[scheme]
        completed = metrics.counters.get("completed_edits", 0)
        per_minute = 60.0 * completed / metrics.elapsed if metrics.elapsed else 0.0
        print(f"{scheme:<15} {completed:>9} "
              f"{metrics.counters.get('conflicts', 0):>9} "
              f"{metrics.counters.get('lost_updates', 0):>5} "
              f"{metrics.counters.get('rejected_checkins', 0):>8} "
              f"{metrics.stats('edit_session').mean:>7.2f} {per_minute:>10.1f}")

    print("\nreading the table:")
    print(" * uip / cico refuse a second writer up front (conflicts) and lose nothing;")
    print(" * cau-overwrite accepts every edit but silently loses the overwritten ones;")
    print(" * cau-detect converts those losses into rejected check-ins the user redoes.")


if __name__ == "__main__":
    main()
