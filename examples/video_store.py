#!/usr/bin/env python3
"""The video merchant from the paper's introduction.

Movie attributes (cast, category, inventory, price) live in the relational
database; preview clips live as files on a file server.  DataLinks keeps the
two consistent: adding a movie links its clip, refreshing a clip is an
in-place update under transaction control, and retiring a movie removes both
the row and the database's control over the file in one transaction.

Run with:  python examples/video_store.py
"""

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import OnUnlink
from repro.workloads.videostore import VideoStoreConfig, VideoStoreWorkload


def main() -> None:
    config = VideoStoreConfig(
        movies=8,
        clip_size=256 * 1024,
        operations=60,
        control_mode=ControlMode.RDD,     # full database control over the clips
        on_unlink=OnUnlink.RESTORE,
    )
    workload = VideoStoreWorkload(config).setup()
    system = workload.system

    print(f"catalogue: {len(workload.browse('drama')) + len(workload.browse('comedy')) + len(workload.browse('action'))} movies")

    # A customer previews a clip (read token handed out by the database).
    nbytes = workload.preview(2)
    print(f"customer previewed movie 2: {nbytes // 1024} KiB streamed from the file server")

    # The merchant refreshes the clip in place; metadata follows automatically.
    workload.refresh_clip(2, version=1)
    row = system.host_db.select_one("movies", {"movie_id": 2}, lock=False)
    print(f"clip 2 refreshed in place; catalogue metadata now reports "
          f"{row['clip_size'] // 1024} KiB, mtime {row['clip_mtime']:.3f}")

    # Retiring a movie removes the row and releases the clip in one transaction.
    workload.retire_movie(5)
    dlfm = system.file_server(config.server).dlfm
    print(f"movie 5 retired; clip still on disk: "
          f"{system.file_server(config.server).files.exists('/clips/movie00005.mpg')}, "
          f"still linked: {dlfm.repository.linked_file('/clips/movie00005.mpg') is not None}")

    # Run the mixed workload and report per-operation latency.
    metrics = workload.run()
    print("\nworkload results (simulated milliseconds):")
    for row in metrics.summary_rows():
        print(f"  {row['operation']:<14} count={row['count']:<4} "
              f"mean={row['mean_ms']:>8.3f} ms   p95={row['p95_ms']:>8.3f} ms")
    print(f"simulated elapsed time: {metrics.elapsed:.2f} s, "
          f"{metrics.throughput():.1f} operations/simulated second")


if __name__ == "__main__":
    main()
