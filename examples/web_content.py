#!/usr/bin/env python3
"""Web content management: DataLinks pages vs pages stored as BLOBs.

Static web pages live as files (served straight from the file system) while
their metadata lives in the database.  The paper argues this beats storing
page bodies in LOB/BLOB columns because the database stays out of the read
data path.  This example runs the same read-mostly workload both ways and
prints the comparison, plus a demonstration of an in-place page update.

Run with:  python examples/web_content.py
"""

from repro.datalinks.control_modes import ControlMode
from repro.workloads.webserver import (
    BlobWebSiteWorkload,
    PAGES_TABLE,
    WebServerWorkload,
    WebSiteConfig,
)


def main() -> None:
    config = WebSiteConfig(
        pages=20,
        page_size=64 * 1024,
        operations=300,
        read_fraction=0.97,
        control_mode=ControlMode.RFD,
        file_servers=2,
    )

    print("setting up a 20-page site on 2 file servers (DataLinks, rfd mode)...")
    datalinks_site = WebServerWorkload(config).setup()
    datalinks_metrics = datalinks_site.run()

    print("setting up the same site with page bodies stored as BLOBs in the DB...")
    blob_metrics = BlobWebSiteWorkload(config).setup().run()

    print("\nread-mostly workload, 97% reads (simulated milliseconds):")
    header = f"{'configuration':<28} {'mean read':>10} {'p95 read':>10} {'mean update':>12}"
    print(header)
    print("-" * len(header))
    for label, metrics in (("DataLinks (files + links)", datalinks_metrics),
                           ("BLOBs in the database", blob_metrics)):
        print(f"{label:<28} {metrics.stats('read_page').mean * 1000:>10.3f} "
              f"{metrics.stats('read_page').p95 * 1000:>10.3f} "
              f"{metrics.stats('update_page').mean * 1000:>12.3f}")

    # Update one page in place and show the reference stayed intact throughout.
    webmaster = datalinks_site.system.session("webmaster", uid=2001)
    url = webmaster.get_datalink(PAGES_TABLE, {"page_id": 0}, "body", access="write")
    with webmaster.update_file(url, truncate=True) as update:
        update.replace(b"<html><body>Breaking news!</body></html>")
    datalinks_site.system.run_archiver()
    visitor = datalinks_site.system.session("visitor", uid=3001)
    read_url = visitor.get_datalink(PAGES_TABLE, {"page_id": 0}, "body", access="read")
    print(f"\npage 0 after in-place update: {visitor.read_url(read_url)!r}")
    row = datalinks_site.system.host_db.select_one(PAGES_TABLE, {"page_id": 0}, lock=False)
    print(f"metadata row tracked the update automatically: size={row['body_size']}")


if __name__ == "__main__":
    main()
