#!/usr/bin/env python3
"""Atomic file update, crash recovery and coordinated point-in-time restore.

This example exercises the guarantees of Sections 4.2 and 4.4:

* an update that fails mid-way leaves no trace -- the last committed version
  is restored from the archive;
* a file-server crash during an update rolls the file back on recovery;
* a coordinated backup captures the database and the file versions together,
  and restoring it brings metadata and file content back in sync.

Run with:  python examples/backup_restore.py
"""

from repro import (
    Column,
    ControlMode,
    DataLinksSystem,
    DatalinkOptions,
    DataType,
    TableSchema,
    datalink_column,
)


def build() -> tuple:
    system = DataLinksSystem()
    system.add_file_server("fs1")
    system.create_table(TableSchema("reports", [
        Column("report_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD)),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("report_id",)))
    system.register_metadata_columns("reports", "body", "body_size", "body_mtime")
    analyst = system.session("analyst", uid=1401)
    url = analyst.put_file("fs1", "/reports/q1.txt", b"Q1 report: draft v1")
    analyst.insert("reports", {"report_id": 1, "body": url,
                               "body_size": 0, "body_mtime": 0.0})
    system.run_archiver()
    return system, analyst


def update(system, analyst, content: bytes) -> None:
    url = analyst.get_datalink("reports", {"report_id": 1}, "body", access="write")
    with analyst.update_file(url, truncate=True) as txn:
        txn.replace(content)
    system.run_archiver()


def main() -> None:
    system, analyst = build()
    fs = analyst.fs("fs1")

    # --- 1. a failed update rolls back ------------------------------------------
    before = fs.read_file("/reports/q1.txt")
    url = analyst.get_datalink("reports", {"report_id": 1}, "body", access="write")
    try:
        with analyst.update_file(url, truncate=True) as txn:
            txn.write(b"half-written numbers...")
            raise RuntimeError("spreadsheet crashed")
    except RuntimeError:
        pass
    after = fs.read_file("/reports/q1.txt")
    print(f"failed update rolled back: content unchanged = {before == after}")

    # --- 2. a crash during an update rolls back on recovery ----------------------
    url = analyst.get_datalink("reports", {"report_id": 1}, "body", access="write")
    in_flight = analyst.update_file(url, truncate=True)
    in_flight.begin()
    in_flight.write(b"power went out right about here")
    system.crash_file_server("fs1")
    summary = system.recover_file_server("fs1")
    print(f"crash recovery rolled back in-flight updates: {summary['rolled_back_updates']}")
    print(f"content intact after recovery = {fs.read_file('/reports/q1.txt') == before}")

    # --- 3. coordinated backup and point-in-time restore -------------------------
    update(system, analyst, b"Q1 report: final v2")
    backup = system.backup("quarter-end")
    print(f"\ncoordinated backup taken at database state id {backup.state_id}")

    update(system, analyst, b"Q1 report: post-audit restatement v3")
    row = system.host_db.select_one("reports", {"report_id": 1}, lock=False)
    print(f"after further edits: file says {fs.read_file('/reports/q1.txt')!r}, "
          f"metadata size {row['body_size']}")

    restored = system.restore(backup)
    row = system.host_db.select_one("reports", {"report_id": 1}, lock=False)
    print(f"restored {restored} to state {backup.state_id}")
    print(f"file content back to the backed-up version: "
          f"{fs.read_file('/reports/q1.txt')!r}")
    print(f"metadata consistent with the file again: size={row['body_size']}")


if __name__ == "__main__":
    main()
