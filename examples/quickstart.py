#!/usr/bin/env python3
"""Quickstart: link a file, read it through the file system, update it in place.

This walks through the core loop of the paper:

1. build a DataLinks system (host database + one file server);
2. create a table with a DATALINK column in ``rfd`` mode (reads stay with the
   file system, writes are managed by the database);
3. put a file on the file server and link it by inserting a row;
4. read the file through the ordinary file-system API;
5. update it *in place* with a write token -- no unlink/relink needed;
6. watch the automatically maintained metadata and version history;
7. scale out: shard linked files over several DLFMs with WAL group commit
   and batched link pipelines;
8. replicate: give every shard a witness replica fed by the primary's
   repository WAL stream.  Healthy witnesses serve *follower reads*
   (load-balanced by the replication-aware router under a staleness
   bound); a crashed primary fails over to a witness promoted to a **full
   primary** -- reads *and* link/unlink writes keep flowing -- and
   fail-back catches the recovered ex-primary up over a *reversed* WAL
   stream from its last-applied LSN instead of a full resync;
9. rebalance *online*: placement is no longer a hash frozen at deployment
   time but a versioned ``PlacementMap`` with a **placement epoch** --
   ``rebalance_prefix(prefix, dest)`` moves a hot URL prefix to another
   shard under a two-phase-commit hand-off (repository rows, archived
   version chain and file content; the destination's witnesses mirrored
   in the same step), while old URLs keep resolving: the router maps
   every URL to the prefix's *current* owner, and the fenced ex-owner
   answers straggler writes with a ``PlacementEpochError`` redirect.

How simulated time works (see ``repro/simclock.py`` for the full story):
every *node* -- the host database, each file server, the archive mover --
owns its own ``ClockDomain`` and advances it by charging calibrated
primitive costs.  Domains max-merge at real synchronization points (IPC
round trips, two-phase-commit barriers, synchronous mirrors), while
pipelined traffic (link batches, WAL shipping) lets the receiver work on
its own timeline without blocking the sender, so N shards genuinely
overlap.  ``system.clock`` is the host node's domain;
``system.clocks.global_now()`` is the cluster wall clock (the max over all
domains) that experiments report.  Benchmarks then quote *simulated*
milliseconds calibrated against the paper's Section 3.2 measurements.

Scale-out knobs (step 7):

* ``ShardedDataLinksDeployment(shards, flush_policy=..., group_commit_window=...)``
  hash-partitions files over N file servers by URL prefix and queues commits
  so one log force and one prepare/commit message per shard cover a batch;
* ``Session.insert_many`` / ``DataLinksEngine.insert_many`` ship one batched
  link message per enlisted shard for a multi-row INSERT;
* ``Session.set_flush_policy("group", n)`` turns WAL group commit on for an
  existing system (``"immediate"`` restores the classic one-force-per-commit
  protocol);
* ``ShardedDataLinksDeployment(..., replication=True, witnesses=N)`` adds
  witness replicas per shard and a ``ReplicationRouter`` that owns roles
  and routes: reads round-robin over the serving node plus every witness
  within ``max_follower_lag`` shipped records; ``fail_over(shard)``
  promotes the best witness to a full primary (epoch-fenced, so the
  deposed ex-primary cannot serve stale tokens -- or take split-brain
  writes) and ``fail_back(shard)`` rejoins the recovered ex-primary over
  the reversed WAL stream before rotating the lease back;
* ``deployment.rebalance_prefix(prefix, dest_shard)`` (step 9) moves a
  prefix online; ``deployment.stats()["routing"]["placement"]`` shows the
  placement epoch, the moved-prefix overrides and any hand-off in flight;
* ``deployment.enable_balancer(BalancerConfig(...))`` (step 10) attaches
  the self-driving placement balancer: each ``tick()`` diffs the router's
  per-prefix traffic counters and issues budgeted, cooldown-governed
  ``rebalance_prefix`` moves (splitting a prefix deeper when moving it
  whole cannot help, merging it back once the heat is gone).

Bench scale tiers (``python -m repro.bench``): ``--smoke`` runs every
experiment on tiny configs in under a second (the tier-1 CI gate and the
committed ``BENCH_smoke.json`` artifact live there), the default tier runs
the paper-scale configs, and ``--scale large`` is the committed capacity
tier (``BENCH_large.json``): E14 as a true million-op run (each variant's
``link_ops`` counts >10^6 charged simulated primitives, <60s wall) and E9
with 1,200 reader sessions plus a 10 -> 10^4 concurrent-session sweep
reporting throughput and p50/p99 read latency per step through the bulk
``get_datalink_many`` token handout.  Regenerate it with
``python -m repro.bench --scale large --profile --best-of 2`` from the
repo root and commit the artifact; tier-1 checks its shape and acceptance
bars cheaply, while ``REPRO_LARGE_BENCH=1 python -m pytest
tests/test_bench_artifact.py`` re-runs the full identity + budget gates.
``--profile`` records a deterministic per-experiment
function-call count (``profile_calls``) next to the cProfile table, and
``--best-of N`` records every wall-clock sample so CI can tell a
regression from a noisy neighbor.

Run with:  python examples/quickstart.py
"""

from repro import (
    Column,
    ControlMode,
    DataLinksSystem,
    DatalinkOptions,
    DataType,
    TableSchema,
    datalink_column,
)


def main() -> None:
    # 1. A system: host DB + DataLinks engine + one file server ("fs1").
    system = DataLinksSystem()
    system.add_file_server("fs1")

    # 2. A table whose "body" column is a DATALINK in rfd mode.
    system.create_table(TableSchema("documents", [
        Column("doc_id", DataType.INTEGER, nullable=False),
        Column("title", DataType.TEXT),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD)),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("doc_id",)))
    system.register_metadata_columns("documents", "body", "body_size", "body_mtime")

    # 3. An application session; put a file on the file server and link it.
    alice = system.session("alice", uid=1001)
    url = alice.put_file("fs1", "/docs/welcome.html", b"<html>Welcome, v1</html>")
    alice.insert("documents", {"doc_id": 1, "title": "Welcome page", "body": url,
                               "body_size": 0, "body_mtime": 0.0})
    system.run_archiver()            # archive the initial version asynchronously
    print(f"linked {url}")

    # 4. Read through the plain file-system API (rfd: no token needed to read).
    content = alice.fs("fs1").read_file("/docs/welcome.html")
    print(f"read {len(content)} bytes through the file system API: {content!r}")

    # A direct write is rejected: the database manages write access now.
    try:
        alice.fs("fs1").write_file("/docs/welcome.html", b"defaced", create=False)
    except Exception as error:
        print(f"direct write rejected as expected: {error}")

    # 5. Update in place: get a write token from the database, open, write, close.
    write_url = alice.get_datalink("documents", {"doc_id": 1}, "body", access="write")
    print(f"write token URL: {write_url}")
    with alice.update_file(write_url, truncate=True) as update:
        update.replace(b"<html>Welcome, v2 -- updated in place!</html>")
    system.run_archiver()

    # 6. Metadata was updated in the same transaction; versions accumulate.
    row = system.host_db.select_one("documents", {"doc_id": 1}, lock=False)
    print(f"new content: {alice.fs('fs1').read_file('/docs/welcome.html')!r}")
    print(f"metadata maintained by the DBMS: size={row['body_size']} "
          f"mtime={row['body_mtime']:.3f}")
    versions = system.file_server("fs1").dlfm.repository.versions("/docs/welcome.html")
    print(f"archived versions: {[v['version_no'] for v in versions]}")
    print(f"simulated time spent: {system.clocks.global_now() * 1000:.2f} ms "
          f"(cluster wall clock; host domain at "
          f"{system.clock.now() * 1000:.2f} ms)")

    # 7. Scale out: shard files over 4 DLFMs, batch the links, group-commit.
    from repro.datalinks.sharding import ShardedDataLinksDeployment

    deployment = ShardedDataLinksDeployment(shards=4, flush_policy="group",
                                            group_commit_window=4)
    deployment.create_table(TableSchema("pages", [
        Column("page_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFF)),
    ], primary_key=("page_id",)))
    bob = deployment.session("bob", uid=1002)
    for batch in range(4):
        txn = deployment.begin()
        rows = []
        for index in range(8):
            page_id = batch * 8 + index
            path = f"/site{page_id % 16}/page{page_id}.html"
            url = deployment.put_file(bob, path, f"<html>{page_id}</html>".encode())
            rows.append({"page_id": page_id, "body": url})
        deployment.engine.insert_many("pages", rows, txn)  # 1 link msg per shard
        deployment.commit(txn)   # enqueued; every 4th commit drains the group
    deployment.drain()
    stats = deployment.stats()
    print(f"sharded deployment: {stats['linked_files_per_shard']} "
          f"with only {stats['host_log_flushes']} host log flushes")
    domains = stats["clock_domains"]
    print(f"clock domains: cluster wall clock "
          f"{domains['global_now_ms']:.2f} ms while per-shard work overlapped "
          f"({ {name: round(ms, 2) for name, ms in domains['charged_ms_per_domain'].items()} } "
          f"ms charged per node)")

    # 8. Replicate: witness replicas consume each primary's WAL stream, so a
    #    shard crash no longer stops reads -- or, since failover is
    #    writable, links and unlinks.
    replicated = ShardedDataLinksDeployment(shards=2, replication=True)
    replicated.create_table(TableSchema("articles", [
        Column("article_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RDB)),
    ], primary_key=("article_id",)))
    carol = replicated.session("carol", uid=1003)
    path = "/news/today.html"
    url = replicated.put_file(carol, path, b"<html>breaking news</html>")
    carol.insert("articles", {"article_id": 1, "body": url})
    replicated.system.run_archiver()
    replicated.system.flush_logs()   # drain group commit: witness catches up

    # Follower reads: the router round-robins token-validated reads over
    # the primary and every caught-up witness (staleness bound: shipper lag).
    shard = replicated.shard_of(path)
    read_url = carol.get_datalink("articles", {"article_id": 1}, "body",
                                  access="read", ttl=1e9)
    for _ in range(2):
        replicated.read_url(carol, read_url)
    roles = replicated.stats()["routing"]
    print(f"follower reads: {roles['reads_by_role']} over roles "
          f"{roles['roles'][shard]}")

    replicated.crash_shard(shard)            # primary dies mid-traffic...
    promotion = replicated.fail_over(shard)  # ...witness becomes full primary
    print(f"primary {shard} crashed; witness {promotion['serving']} promoted "
          f"at epoch {promotion['epoch']}")
    print(f"same token, same URL, read via the witness: "
          f"{replicated.read_url(carol, read_url)!r}")

    # Writable failover: the promoted witness takes the link branch and the
    # 2PC vote for a brand-new article while the home primary is still down.
    url2 = replicated.put_file(carol, "/news/update.html",
                               b"<html>filed during the outage</html>")
    carol.insert("articles", {"article_id": 2, "body": url2})
    print(f"linked {url2} while {shard} was down "
          f"(served by {promotion['serving']})")

    # Fail-back: the recovered ex-primary rejoins over the *reversed* WAL
    # stream (catching up from its last-applied LSN -- no full resync),
    # then the lease rotates home and the outage-era article is there.
    summary = replicated.fail_back(shard)
    rejoin = summary.get("rejoin", {})
    print(f"failed back to {shard} via {rejoin.get('mode', 'rotation')} "
          f"({rejoin.get('caught_up_records', 0)} records caught up): "
          f"{replicated.read_url(carol, read_url)!r}")
    read_url2 = carol.get_datalink("articles", {"article_id": 2}, "body",
                                   access="read", ttl=1e9)
    print(f"outage-era article served by the home primary: "
          f"{replicated.read_url(carol, read_url2)!r}")

    # 9. Rebalance online: move the hot /news prefix to the other shard
    #    under a 2PC hand-off -- rows, version chain and content relink to
    #    the destination DLFM, its witnesses get the mirror in the same
    #    step, and the placement epoch bumps atomically at commit.
    replicated.system.run_archiver()
    other = next(name for name in replicated.shard_names if name != shard)
    summary = replicated.rebalance_prefix("/news", other)
    print(f"rebalanced /news: {summary['moved_files']} files + "
          f"{summary['moved_versions']} archived versions moved "
          f"{summary['source']} -> {summary['dest']} "
          f"(placement epoch {summary['epoch']})")
    # The old URL still names the old shard; the router resolves it to the
    # new owner, whose token secret signed the fresh read token.
    read_url = carol.get_datalink("articles", {"article_id": 1}, "body",
                                  access="read", ttl=1e9)
    print(f"old URL, new owner: {replicated.read_url(carol, read_url)!r}")
    placement = replicated.stats()["routing"]["placement"]
    print(f"placement map: epoch {placement['epoch']}, "
          f"overrides {placement['overrides']}")
    # A straggler write addressed to the fenced ex-owner is redirected.
    try:
        replicated.shard(shard).dlfm.check_placement("/news/today.html")
    except Exception as error:
        print(f"stale write to {shard} refused: {error}")

    # 10. Self-driving placement: the balancer runs on its own clock
    #     domain, diffs the router's per-prefix traffic counters each
    #     tick, and issues budgeted, cooldown-governed rebalance moves on
    #     its own -- no operator in the loop.
    from repro.datalinks.balancer import BalancerConfig

    balancer = replicated.enable_balancer(BalancerConfig(
        window_ops_min=8, move_budget=1, cooldown_ticks=2))
    for index in range(4):
        cat_url = replicated.put_file(
            carol, f"/cat{index}/story.html",
            f"<html>category {index}</html>".encode())
        carol.insert("articles", {"article_id": 10 + index, "body": cat_url})
    replicated.system.run_archiver()
    replicated.system.flush_logs()
    # Two of the four /cat prefixes necessarily share a shard; hammer that
    # pair so the shard runs hot.
    by_shard: dict = {}
    for index in range(4):
        owner = replicated.shard_of(f"/cat{index}/story.html")
        by_shard.setdefault(owner, []).append(index)
    crowded = max(by_shard, key=lambda name: len(by_shard[name]))
    hot, warm = by_shard[crowded][:2]
    for index, reads in ((hot, 12), (warm, 6)):
        token = carol.get_datalink("articles", {"article_id": 10 + index},
                                   "body", access="read", ttl=1e9)
        for _ in range(reads):
            replicated.read_url(carol, token)
    summary = balancer.tick()
    for move in summary["moves"]:
        print(f"balancer moved hot prefix {move['prefix']} "
              f"{move['source']} -> {move['dest']} on its own "
              f"(tick {summary['tick']}, {summary['window_ops']} window ops)")
    quiet = balancer.tick()          # no fresh traffic: the balancer idles
    stats = balancer.stats()
    print(f"balancer: {stats['moves_issued']} move(s) issued, max "
          f"{stats['max_moves_per_tick']}/tick within budget "
          f"{stats['move_budget']}; quiet tick acted={quiet['acted']}")


if __name__ == "__main__":
    main()
