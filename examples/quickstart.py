#!/usr/bin/env python3
"""Quickstart: link a file, read it through the file system, update it in place.

This walks through the core loop of the paper:

1. build a DataLinks system (host database + one file server);
2. create a table with a DATALINK column in ``rfd`` mode (reads stay with the
   file system, writes are managed by the database);
3. put a file on the file server and link it by inserting a row;
4. read the file through the ordinary file-system API;
5. update it *in place* with a write token -- no unlink/relink needed;
6. watch the automatically maintained metadata and version history.

Run with:  python examples/quickstart.py
"""

from repro import (
    Column,
    ControlMode,
    DataLinksSystem,
    DatalinkOptions,
    DataType,
    TableSchema,
    datalink_column,
)


def main() -> None:
    # 1. A system: host DB + DataLinks engine + one file server ("fs1").
    system = DataLinksSystem()
    system.add_file_server("fs1")

    # 2. A table whose "body" column is a DATALINK in rfd mode.
    system.create_table(TableSchema("documents", [
        Column("doc_id", DataType.INTEGER, nullable=False),
        Column("title", DataType.TEXT),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD)),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("doc_id",)))
    system.register_metadata_columns("documents", "body", "body_size", "body_mtime")

    # 3. An application session; put a file on the file server and link it.
    alice = system.session("alice", uid=1001)
    url = alice.put_file("fs1", "/docs/welcome.html", b"<html>Welcome, v1</html>")
    alice.insert("documents", {"doc_id": 1, "title": "Welcome page", "body": url,
                               "body_size": 0, "body_mtime": 0.0})
    system.run_archiver()            # archive the initial version asynchronously
    print(f"linked {url}")

    # 4. Read through the plain file-system API (rfd: no token needed to read).
    content = alice.fs("fs1").read_file("/docs/welcome.html")
    print(f"read {len(content)} bytes through the file system API: {content!r}")

    # A direct write is rejected: the database manages write access now.
    try:
        alice.fs("fs1").write_file("/docs/welcome.html", b"defaced", create=False)
    except Exception as error:
        print(f"direct write rejected as expected: {error}")

    # 5. Update in place: get a write token from the database, open, write, close.
    write_url = alice.get_datalink("documents", {"doc_id": 1}, "body", access="write")
    print(f"write token URL: {write_url}")
    with alice.update_file(write_url, truncate=True) as update:
        update.replace(b"<html>Welcome, v2 -- updated in place!</html>")
    system.run_archiver()

    # 6. Metadata was updated in the same transaction; versions accumulate.
    row = system.host_db.select_one("documents", {"doc_id": 1}, lock=False)
    print(f"new content: {alice.fs('fs1').read_file('/docs/welcome.html')!r}")
    print(f"metadata maintained by the DBMS: size={row['body_size']} "
          f"mtime={row['body_mtime']:.3f}")
    versions = system.file_server("fs1").dlfm.repository.versions("/docs/welcome.html")
    print(f"archived versions: {[v['version_no'] for v in versions]}")
    print(f"simulated time spent: {system.clock.now() * 1000:.2f} ms")


if __name__ == "__main__":
    main()
