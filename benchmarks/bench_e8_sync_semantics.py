"""E8 -- synchronization of file access with link/unlink via the Sync table.

Paper claim (Section 4.5): every open of a managed file records a Sync-table
entry; unlink is rejected while entries exist; full-control modes serialize
readers and writers at open time.  These benchmarks time the Sync-table hot
paths (the open-time conflict check and the unlink-time rejection check).
"""

import pytest

from conftest import read_token_url

from repro.bench.experiments import FILES_TABLE
from repro.datalinks.uip import tokenized_path
from repro.errors import DataLinksError
from repro.fs.vfs import OpenFlags


def test_sync_entry_create_and_remove(benchmark, rdd_setup):
    """Tokenized read open/close of a full-control file (two Sync operations)."""

    system, owner, _ = rdd_setup
    lfs = system.file_server("fs1").lfs
    path = tokenized_path(read_token_url(rdd_setup))

    def open_close():
        fd = lfs.open(path, OpenFlags.READ, owner.cred)
        lfs.close(fd)

    benchmark(open_close)


def test_unlink_rejection_while_open(benchmark, rdd_setup):
    """The unlink-time Sync-table check that protects open files."""

    system, owner, _ = rdd_setup
    lfs = system.file_server("fs1").lfs
    path = tokenized_path(read_token_url(rdd_setup))
    fd = lfs.open(path, OpenFlags.READ, owner.cred)

    def attempt_unlink():
        with pytest.raises(DataLinksError):
            owner.delete(FILES_TABLE, {"file_id": 0})

    benchmark(attempt_unlink)
    lfs.close(fd)
