"""E2 -- DLFS and token-validation overhead on open/close.

Paper claim (Section 3.2): the DLFS layer plus token validation add roughly
1 ms to open/read/close; reads of files not under full database control never
reach the DLFM.
"""

from conftest import read_token_url

from repro.datalinks.uip import tokenized_path
from repro.fs.vfs import OpenFlags


def _open_close(lfs, path, cred):
    fd = lfs.open(path, OpenFlags.READ, cred)
    lfs.close(fd)


def test_open_close_unlinked_file(benchmark, plain_setup):
    system, owner, paths = plain_setup
    lfs = system.file_server("fs1").lfs
    benchmark(lambda: _open_close(lfs, paths[0], owner.cred))


def test_open_close_rfd_linked_read(benchmark, rfd_setup):
    """rfd reads go straight to the native file system (no upcall)."""

    system, owner, paths = rfd_setup
    lfs = system.file_server("fs1").lfs
    benchmark(lambda: _open_close(lfs, paths[0], owner.cred))


def test_open_close_rdd_linked_with_token(benchmark, rdd_setup):
    """Full-control reads pay token validation plus the Sync-table upcalls."""

    system, owner, _ = rdd_setup
    lfs = system.file_server("fs1").lfs
    path = tokenized_path(read_token_url(rdd_setup))
    benchmark(lambda: _open_close(lfs, path, owner.cred))
