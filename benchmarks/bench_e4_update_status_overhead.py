"""E4 -- cost of maintaining file-update status at the DLFM.

Paper claim (Section 5): opening a DataLinks-managed file differs only
marginally from opening a plain file; the update-status bookkeeping at the
DLFM is insignificant.
"""

from repro.bench.experiments import FILES_TABLE
from repro.fs.vfs import OpenFlags


def test_write_open_close_plain_file(benchmark, plain_setup):
    system, owner, paths = plain_setup
    lfs = system.file_server("fs1").lfs

    def open_close():
        fd = lfs.open(paths[0], OpenFlags.READ | OpenFlags.WRITE, owner.cred)
        lfs.close(fd)

    benchmark(open_close)


def test_write_open_close_rfd_managed(benchmark, rfd_setup):
    """Token handout, lookup/open/close upcalls, Sync + tracking rows, take-over."""

    system, owner, _ = rfd_setup

    def managed_open_close():
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        update = owner.update_file(url)
        update.begin()
        update.commit()

    benchmark(managed_open_close)


def test_write_open_close_rdd_managed(benchmark, rdd_setup):
    system, owner, _ = rdd_setup

    def managed_open_close():
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        update = owner.update_file(url)
        update.begin()
        update.commit()

    benchmark(managed_open_close)
