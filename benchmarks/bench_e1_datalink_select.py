"""E1 -- DATALINK column retrieval at the host database.

Paper claim (Section 3.2): retrieving a DATALINK column, including access
token generation, costs less than 3 ms at the host database.  The simulated
table is produced by ``python -m repro.bench E1``; these benchmarks measure
the wall-clock cost of the same statements in this implementation.
"""

from repro.bench.experiments import FILES_TABLE


def test_select_row_without_token(benchmark, rdb_setup):
    system, _, _ = rdb_setup
    benchmark(lambda: system.engine.select(FILES_TABLE, {"file_id": 3}, lock=False))


def test_select_datalink_with_read_token(benchmark, rdb_setup):
    system, _, _ = rdb_setup
    benchmark(lambda: system.engine.get_datalink(
        FILES_TABLE, {"file_id": 3}, "doc", access="read"))


def test_select_datalink_with_write_token(benchmark, rfd_setup):
    system, _, _ = rfd_setup
    benchmark(lambda: system.engine.get_datalink(
        FILES_TABLE, {"file_id": 0}, "doc", access="write"))
