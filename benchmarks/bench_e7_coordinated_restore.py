"""E7 -- coordinated backup and point-in-time restore.

Paper claim (Section 4.4): backup and restore of the database and the linked
files are executed in synchronization, keyed by the database state identifier
associated with every archived file version.
"""

import pytest

from repro.bench.experiments import FILES_TABLE, build_microsystem
from repro.datalinks.control_modes import ControlMode
from repro.workloads.generator import make_content


@pytest.fixture(scope="module")
def system_with_versions():
    """A system with three committed versions and one coordinated backup."""

    setup = build_microsystem(ControlMode.RFD, size=16 * 1024)
    system, owner, _ = setup
    for version in range(1, 4):
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        with owner.update_file(url, truncate=True) as update:
            update.replace(make_content(16 * 1024, tag="v", version=version))
        system.run_archiver()
    backup = system.backup("benchmark-point")
    return system, backup


def test_coordinated_backup(benchmark, system_with_versions):
    system, _ = system_with_versions
    benchmark(lambda: system.backup("bench"))


def test_coordinated_restore(benchmark, system_with_versions):
    system, backup = system_with_versions
    benchmark(lambda: system.restore(backup))
