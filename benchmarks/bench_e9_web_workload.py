"""E9 -- read-mostly web workload: DataLinks vs BLOB-in-database.

Paper claim (Section 1): DataLinks keeps the database out of the read data
path and lets content be distributed over multiple file servers; LOB/BLOB
approaches funnel every byte through the database.
"""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.workloads.webserver import (
    BlobWebSiteWorkload,
    PAGES_TABLE,
    WebServerWorkload,
    WebSiteConfig,
)

PAGE_SIZE = 32 * 1024


@pytest.fixture(scope="module")
def datalinks_site():
    config = WebSiteConfig(pages=16, page_size=PAGE_SIZE, operations=0,
                           control_mode=ControlMode.RFD)
    return WebServerWorkload(config).setup()


@pytest.fixture(scope="module")
def blob_site():
    config = WebSiteConfig(pages=16, page_size=PAGE_SIZE, operations=0)
    return BlobWebSiteWorkload(config).setup()


def test_page_read_datalinks(benchmark, datalinks_site):
    workload = datalinks_site
    visitor = workload.system.session("visitor", uid=3001)

    def read_page():
        url = visitor.get_datalink(PAGES_TABLE, {"page_id": 3}, "body", access="read")
        visitor.read_url(url)

    benchmark(read_page)


def test_page_read_blob_in_db(benchmark, blob_site):
    workload = blob_site
    benchmark(lambda: workload.store.read("/site/page00003.html"))


def test_page_update_in_place(benchmark, datalinks_site):
    workload = datalinks_site
    webmaster = workload.system.session("webmaster", uid=2001)
    state = {"version": 1}

    def update_page():
        url = webmaster.get_datalink(PAGES_TABLE, {"page_id": 5}, "body", access="write")
        with webmaster.update_file(url, truncate=True) as update:
            update.replace(b"<html>" + str(state["version"]).encode() + b"</html>")
        state["version"] += 1
        workload.system.run_archiver()

    benchmark(update_page)
