"""E11 -- sharded multi-DLFM scale-out with group commit and batched pipelines.

Beyond the paper: the scale-out layer hash-partitions linked files over N
file servers, ships one batched link message per enlisted shard per
multi-row statement, and resolves commits in groups (one host log force and
one prepare/commit message per shard per batch).

The headline claim, asserted in :func:`test_scaleout_speedup_at_8_shards`:
at 8 shards with group commit + batched links, link throughput (in simulated
time) is at least **1.5x** the single-server per-row baseline.
"""

import pytest

from repro.workloads.scaleout import ScaleOutConfig, ScaleOutWorkload


def _throughput(**overrides) -> float:
    config = ScaleOutConfig(clients=4, transactions_per_client=3,
                            rows_per_transaction=16, file_size=512, **overrides)
    workload = ScaleOutWorkload(config).setup()
    metrics = workload.run()
    return workload.link_throughput(metrics)


BASELINE = dict(shards=1, batch_links=False, flush_policy="immediate",
                group_commit_window=1)
SCALED = dict(shards=8, batch_links=True, flush_policy="group",
              group_commit_window=8)


def test_scaleout_speedup_at_8_shards():
    """8 shards + group commit + batched links >= 1.5x the per-row baseline."""

    baseline = _throughput(**BASELINE)
    scaled = _throughput(**SCALED)
    assert baseline > 0
    speedup = scaled / baseline
    assert speedup >= 1.5, (
        f"scale-out speedup {speedup:.2f}x below the 1.5x claim "
        f"(baseline {baseline:.1f} links/s, scaled {scaled:.1f} links/s)")


@pytest.fixture(scope="module")
def baseline_workload():
    config = ScaleOutConfig(clients=2, transactions_per_client=2,
                            rows_per_transaction=8, file_size=512, **BASELINE)
    return ScaleOutWorkload(config).setup()


@pytest.fixture(scope="module")
def scaled_workload():
    config = ScaleOutConfig(clients=2, transactions_per_client=2,
                            rows_per_transaction=8, file_size=512, **SCALED)
    return ScaleOutWorkload(config).setup()


def test_ingest_single_server_per_row(benchmark, baseline_workload):
    """Wall-clock cost of the per-row single-server ingest path."""

    deployment = baseline_workload.deployment
    session = deployment.session("bench-base", uid=6001)
    state = {"doc_id": 1_000_000}

    def ingest_one():
        path = f"/bench/base{state['doc_id']}.dat"
        url = deployment.put_file(session, path, b"x" * 256)
        host_txn = deployment.begin()
        deployment.engine.insert(
            "ingested_docs",
            {"doc_id": state["doc_id"], "body": url, "body_size": 256}, host_txn)
        deployment.engine.commit(host_txn)
        state["doc_id"] += 1

    benchmark(ingest_one)


def test_ingest_sharded_batched_group(benchmark, scaled_workload):
    """Wall-clock cost of a batched 8-row ingest through the commit queue."""

    deployment = scaled_workload.deployment
    session = deployment.session("bench-scaled", uid=6002)
    state = {"doc_id": 2_000_000}

    def ingest_batch():
        rows = []
        for _ in range(8):
            path = f"/bench{state['doc_id'] % 32}/doc{state['doc_id']}.dat"
            url = deployment.put_file(session, path, b"x" * 256)
            rows.append({"doc_id": state["doc_id"], "body": url,
                         "body_size": 256})
            state["doc_id"] += 1
        host_txn = deployment.begin()
        deployment.engine.insert_many("ingested_docs", rows, host_txn)
        deployment.commit(host_txn)

    benchmark(ingest_batch)
    deployment.drain()
