"""Shared fixtures for the pytest-benchmark suite.

Each benchmark measures the wall-clock cost of one code path the paper's
evaluation talks about; the simulated-latency tables (what EXPERIMENTS.md
records) come from ``python -m repro.bench`` instead.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import FILES_TABLE, build_microsystem
from repro.datalinks.control_modes import ControlMode


@pytest.fixture(scope="module")
def plain_setup():
    """A system with one unlinked 64 KiB file."""

    return build_microsystem(None, size=64 * 1024)


@pytest.fixture(scope="module")
def rdb_setup():
    """A system with ten rdb-linked files (full control, read-only)."""

    return build_microsystem(ControlMode.RDB, size=4096, files=10)


@pytest.fixture(scope="module")
def rfd_setup():
    """A system with one rfd-linked file (database-managed update)."""

    return build_microsystem(ControlMode.RFD, size=8192)


@pytest.fixture(scope="module")
def rdd_setup():
    """A system with one rdd-linked file (full control with update)."""

    return build_microsystem(ControlMode.RDD, size=8192)


def read_token_url(setup, ttl: float = 1e9) -> str:
    """A long-lived read token URL for file_id 0 of *setup*."""

    _, owner, _ = setup
    return owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc",
                              access="read", ttl=ttl)


def write_token_url(setup, ttl: float = 1e9) -> str:
    """A long-lived write token URL for file_id 0 of *setup*."""

    _, owner, _ = setup
    return owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc",
                              access="write", ttl=ttl)
