"""E10 -- ablation: strict read synchronization for rfd-linked files.

Paper context (Section 5): the rfd read/write window could be closed by
upcalling on every read open and recording Sync-table entries, but the
authors reject that because of the per-open cost.  These benchmarks measure
the wall-clock cost of a read open/close with and without the strict path.
"""

import pytest

from repro.api.system import DataLinksSystem
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.fs.vfs import OpenFlags
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import make_content


def _build(strict: bool):
    system = DataLinksSystem()
    system.add_file_server("fs1", strict_read_upcalls=strict)
    system.create_table(TableSchema("docs", [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD,
                                                strict_read_sync=strict)),
    ], primary_key=("doc_id",)))
    owner = system.session("owner", uid=1001)
    url = owner.put_file("fs1", "/data/page.html", make_content(8192, tag="e10"))
    owner.insert("docs", {"doc_id": 0, "body": url})
    system.run_archiver()
    return system, owner


@pytest.fixture(scope="module")
def default_rfd():
    return _build(strict=False)


@pytest.fixture(scope="module")
def strict_rfd():
    return _build(strict=True)


def _open_close(system, owner):
    lfs = system.file_server("fs1").lfs
    fd = lfs.open("/data/page.html", OpenFlags.READ, owner.cred)
    lfs.close(fd)


def test_read_open_close_default_rfd(benchmark, default_rfd):
    system, owner = default_rfd
    benchmark(lambda: _open_close(system, owner))


def test_read_open_close_strict_rfd(benchmark, strict_rfd):
    """The same open/close paying the upcall and Sync-table entries."""

    system, owner = strict_rfd
    benchmark(lambda: _open_close(system, owner))
