"""E3 -- end-to-end read path: plain FS vs DataLinks vs BLOB-in-DB.

Paper claim (Sections 1, 3.2): DataLinks adds a fixed ~1 ms per open, under
1 % for a 1 MB read, while LOB/BLOB storage pays database processing on every
byte read.
"""

import pytest

from repro.bench.experiments import FILES_TABLE, build_microsystem
from repro.datalinks.baselines.blob_store import BlobFileStore
from repro.datalinks.control_modes import ControlMode
from repro.workloads.generator import make_content

ONE_MB = 1024 * 1024


@pytest.fixture(scope="module")
def plain_1mb():
    return build_microsystem(None, size=ONE_MB)


@pytest.fixture(scope="module")
def datalinks_1mb():
    return build_microsystem(ControlMode.RDB, size=ONE_MB)


@pytest.fixture(scope="module")
def blob_1mb():
    from repro.api.system import DataLinksSystem

    system = DataLinksSystem()
    store = BlobFileStore(system.host_db, system.clock)
    store.write("/data/file0.bin", make_content(ONE_MB, tag="blob"))
    return store


def test_read_1mb_plain_fs(benchmark, plain_1mb):
    system, owner, paths = plain_1mb
    lfs = system.file_server("fs1").lfs
    benchmark(lambda: lfs.read_file(paths[0], owner.cred))


def test_read_1mb_datalinks(benchmark, datalinks_1mb):
    system, owner, _ = datalinks_1mb

    def read_via_datalinks():
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="read")
        owner.read_url(url)

    benchmark(read_via_datalinks)


def test_read_1mb_blob_in_db(benchmark, blob_1mb):
    benchmark(lambda: blob_1mb.read("/data/file0.bin"))
