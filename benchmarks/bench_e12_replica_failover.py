"""E12 -- shard replication: WAL shipping, witness promotion, read availability.

Beyond the paper: each shard's primary DLFM ships its repository WAL stream
to a witness replica; when the primary crashes, the deployment promotes the
witness so token validation and reads keep flowing for that shard's URL
prefix, fenced by a per-shard epoch.

The headline claims, asserted in :func:`test_replica_failover_availability`:

* with replication, **every** read of the crashed shard's prefix succeeds
  after promotion (zero read unavailability window);
* without replication, **every** read of that prefix fails until recovery.
"""

import pytest

from repro.workloads.failover import FailoverConfig, FailoverWorkload
from repro.workloads.generator import WorkloadMetrics


def _run(replication: bool):
    config = FailoverConfig(shards=4, files=24, reads_per_phase=24,
                            file_size=1024, replication=replication)
    workload = FailoverWorkload(config).setup()
    return workload, workload.run()


def test_replica_failover_availability():
    """Replicated: 100% victim-prefix availability; baseline: 0%."""

    baseline, baseline_metrics = _run(replication=False)
    attempts = (baseline_metrics.counters.get("victim_reads_ok_after", 0)
                + baseline_metrics.counters.get("victim_reads_failed_after", 0))
    assert attempts > 0
    assert baseline.availability(baseline_metrics) == 0.0

    replicated, replicated_metrics = _run(replication=True)
    assert replicated_metrics.counters.get("victim_reads_failed_after", 0) == 0
    assert replicated.availability(replicated_metrics) == 1.0
    # promotion actually ran and was timed
    assert replicated_metrics.stats("promotion").count == 1


def test_replication_costs_link_throughput_but_not_reads():
    """The replication tax lands on the write path, not the read path."""

    baseline, baseline_metrics = _run(replication=False)
    replicated, replicated_metrics = _run(replication=True)
    assert replicated.link_throughput(replicated_metrics) < \
        baseline.link_throughput(baseline_metrics)
    # pre-crash reads on healthy primaries cost about the same
    assert replicated_metrics.stats("read").mean == pytest.approx(
        baseline_metrics.stats("read").mean, rel=0.25)


@pytest.fixture(scope="module")
def replicated_workload():
    config = FailoverConfig(shards=2, files=8, reads_per_phase=8,
                            file_size=512, replication=True)
    workload = FailoverWorkload(config).setup()
    workload.run()
    return workload


def test_read_through_promoted_witness(benchmark, replicated_workload):
    """Wall-clock cost of a token-validated read served by the witness."""

    deployment = replicated_workload.deployment
    session = deployment.session("bench-read", uid=7100)
    url = session.get_datalink("replicated_docs", {"doc_id": 0}, "body",
                               access="read", ttl=1e9)

    def read_via_replica():
        deployment.read_url(session, url)

    benchmark(read_via_replica)


def test_failover_roundtrip(benchmark):
    """Wall-clock cost of a full crash -> promote -> fail-back cycle."""

    config = FailoverConfig(shards=2, files=4, reads_per_phase=0,
                            file_size=256, replication=True)
    workload = FailoverWorkload(config).setup()
    deployment = workload.deployment
    workload._ingest(WorkloadMetrics())
    victim = workload.victim

    def cycle():
        deployment.crash_shard(victim)
        deployment.fail_over(victim)
        deployment.fail_back(victim)

    benchmark(cycle)
