"""E5 -- update schemes compared: UIP vs CICO vs CAU.

Paper claim (Section 3): CICO holds database locks across the whole edit
session and needs two extra database updates per edit; CAU avoids locks but
admits lost updates; update-in-place serializes writers at open/close.
These benchmarks time one complete edit under each scheme; the comparative
counters (conflicts, lost updates) come from ``python -m repro.bench E5``.
"""

import itertools

import pytest

from repro.bench.experiments import FILES_TABLE
from repro.datalinks.baselines.cau import CopyAndUpdateManager
from repro.datalinks.baselines.cico import CheckInCheckOutManager
from repro.workloads.generator import make_content


def test_one_edit_update_in_place(benchmark, rfd_setup):
    system, owner, _ = rfd_setup
    counter = itertools.count()

    def one_edit():
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        with owner.update_file(url, truncate=True) as update:
            update.replace(make_content(8192, tag="uip", version=next(counter)))
        system.run_archiver()

    benchmark(one_edit)


def test_one_edit_check_in_check_out(benchmark, plain_setup):
    system, owner, paths = plain_setup
    manager = CheckInCheckOutManager(system.host_db, system.clock)
    lfs = system.file_server("fs1").lfs
    counter = itertools.count()

    def one_edit():
        manager.check_out("fs1", paths[0], owner.cred.uid)
        lfs.write_file(paths[0], make_content(8192, tag="cico", version=next(counter)),
                       owner.cred, create=False)
        manager.check_in("fs1", paths[0], owner.cred.uid)

    benchmark(one_edit)


@pytest.fixture(scope="module")
def cau_manager(plain_setup):
    system, _, _ = plain_setup
    return CopyAndUpdateManager({"fs1": system.file_server("fs1").files})


def test_one_edit_copy_and_update(benchmark, plain_setup, cau_manager):
    _, owner, paths = plain_setup
    counter = itertools.count()

    def one_edit():
        copy = cau_manager.make_copy("fs1", paths[0], owner.cred.uid)
        cau_manager.write_copy(copy, make_content(8192, tag="cau", version=next(counter)))
        cau_manager.check_in(copy, policy="overwrite")

    benchmark(one_edit)
