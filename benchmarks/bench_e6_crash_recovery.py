"""E6 -- atomicity: rollback of a failed update and crash recovery.

Paper claim (Section 4.2): if the update transaction aborts or a failure
occurs, the in-progress version is discarded and the last committed version
is restored from the archive automatically.
"""

from repro.bench.experiments import FILES_TABLE


def test_rollback_of_in_progress_update(benchmark, rfd_setup):
    """Restore the last committed version after an abandoned update."""

    system, owner, paths = rfd_setup
    dlfm = system.file_server("fs1").dlfm

    def update_then_abort():
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        update = owner.update_file(url, truncate=True)
        update.begin()
        update.write(b"doomed partial content")
        update.abort()

    benchmark(update_then_abort)
    # The rollback must leave no tracking state behind.
    assert dlfm.repository.all_tracking() == []


def test_dlfm_crash_recovery(benchmark, rdd_setup):
    """Crash the file server and run DLFM recovery (repository + file rollback)."""

    system, _, _ = rdd_setup

    def crash_and_recover():
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")

    benchmark(crash_and_recover)
