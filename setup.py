"""Setuptools shim.

The execution environment ships setuptools without the ``wheel`` package and
has no network access, so PEP 660 editable installs are unavailable; this
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
